"""Suffix array construction (prefix doubling) and pattern search.

The seeding substrate's foundation: the FM-index derives its BWT from
this suffix array, and the MEM finder uses suffix-array binary search
for longest-prefix matching.  Prefix doubling with numpy argsort is
O(n log^2 n) — comfortably fast for the multi-hundred-kilobase
synthetic references the experiments use.

A unique sentinel is appended internally so that all suffixes are
totally ordered; it sorts *first* (smaller than any base code), the
convention the FM-index's C-array arithmetic assumes, and the one
:func:`_compare_suffix` mirrors (a suffix that is a proper prefix of
the pattern sorts before the pattern).
"""

from __future__ import annotations

import numpy as np

SENTINEL = -1


def build_suffix_array(text: np.ndarray) -> np.ndarray:
    """Suffix array of ``text`` (codes), excluding the sentinel suffix.

    Returns the start positions of the ``len(text)`` suffixes in
    lexicographic order.
    """
    text = np.asarray(text, dtype=np.int64)
    n = len(text)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if text.size and text.min() <= SENTINEL:
        raise ValueError("text codes must be non-negative")
    padded = np.concatenate([text, [SENTINEL]])
    rank = padded.copy()
    sa = np.argsort(rank, kind="stable")
    k = 1
    tmp = np.empty(n + 1, dtype=np.int64)
    while True:
        # Sort by (rank[i], rank[i + k]) pairs.
        second = np.full(n + 1, -1, dtype=np.int64)
        second[: n + 1 - k] = rank[k:]
        order = np.lexsort((second, rank))
        # Re-rank.
        sa = order
        tmp[sa[0]] = 0
        prev = sa[:-1]
        cur = sa[1:]
        changed = (rank[cur] != rank[prev]) | (second[cur] != second[prev])
        tmp[cur] = np.cumsum(changed)
        rank, tmp = tmp.copy(), rank
        if rank[sa[-1]] == n:
            break
        k *= 2
        if k > n + 1:
            break
    # Drop the sentinel suffix (it is the lone suffix starting at n).
    return sa[sa < n].astype(np.int64)


def _compare_suffix(
    text: np.ndarray, start: int, pattern: np.ndarray
) -> int:
    """-1/0/+1 comparison of text[start:] against ``pattern`` as prefix.

    0 means the pattern is a prefix of the suffix.
    """
    n = len(text)
    m = len(pattern)
    length = min(n - start, m)
    seg = text[start : start + length]
    diff = seg != pattern[:length]
    if diff.any():
        k = int(np.argmax(diff))
        return -1 if seg[k] < pattern[k] else 1
    if length == m:
        return 0
    return -1  # suffix is a proper prefix of the pattern: sorts before


def sa_interval(
    text: np.ndarray, sa: np.ndarray, pattern: np.ndarray
) -> tuple[int, int]:
    """Half-open SA interval [lo, hi) of suffixes starting with pattern."""
    pattern = np.asarray(pattern)
    if len(pattern) == 0:
        return (0, len(sa))
    lo, hi = 0, len(sa)
    while lo < hi:
        mid = (lo + hi) // 2
        if _compare_suffix(text, int(sa[mid]), pattern) < 0:
            lo = mid + 1
        else:
            hi = mid
    first = lo
    lo, hi = first, len(sa)
    while lo < hi:
        mid = (lo + hi) // 2
        if _compare_suffix(text, int(sa[mid]), pattern) <= 0:
            lo = mid + 1
        else:
            hi = mid
    return (first, lo)


def longest_prefix_match(
    text: np.ndarray,
    sa: np.ndarray,
    pattern: np.ndarray,
    min_length: int = 1,
) -> tuple[int, tuple[int, int]]:
    """Longest prefix of ``pattern`` occurring in ``text``.

    Returns ``(length, (lo, hi))`` — the match length and its SA
    interval; ``(0, (0, 0))`` when even ``pattern[:min_length]`` is
    absent.  Binary search over the length, O(log m) interval probes.
    """
    pattern = np.asarray(pattern)
    m = len(pattern)
    if m < min_length:
        return 0, (0, 0)
    if sa_interval(text, sa, pattern[:min_length])[0] == sa_interval(
        text, sa, pattern[:min_length]
    )[1]:
        return 0, (0, 0)
    lo_len, hi_len = min_length, m
    best = sa_interval(text, sa, pattern[:min_length])
    while lo_len < hi_len:
        mid = (lo_len + hi_len + 1) // 2
        interval = sa_interval(text, sa, pattern[:mid])
        if interval[0] < interval[1]:
            lo_len = mid
            best = interval
        else:
            hi_len = mid - 1
    return lo_len, best
