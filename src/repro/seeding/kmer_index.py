"""Hash-based k-mer seeding (the ERT stand-in).

The paper pairs SeedEx with the ERT seeding accelerator; this module
is the software stand-in with the same role: produce anchor seeds fast
at the cost of a bigger index.  Fixed-length k-mers are hashed to
reference positions; query k-mers look up anchors which are then
greedily extended to maximal matches so the chaining stage sees seeds
comparable to SMEMs.
"""

from __future__ import annotations

import numpy as np

from repro.seeding.mems import Seed


class KmerIndex:
    """Exact k-mer hash index over an encoded, N-free reference."""

    def __init__(self, reference: np.ndarray, k: int = 19) -> None:
        reference = np.asarray(reference, dtype=np.int64)
        if k < 1 or k > 31:
            raise ValueError("k must be in [1, 31]")
        if len(reference) < k:
            raise ValueError("reference shorter than k")
        if reference.max(initial=0) >= 4:
            raise ValueError("reference must be N-free for k-mer packing")
        self.k = k
        self.reference = reference.astype(np.uint8)
        keys = _pack_kmers(reference, k)
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._positions = order.astype(np.int64)

    def lookup(self, kmer: np.ndarray) -> np.ndarray:
        """Reference start positions of an exact k-mer (sorted)."""
        kmer = np.asarray(kmer, dtype=np.int64)
        if len(kmer) != self.k:
            raise ValueError(f"need a {self.k}-mer, got {len(kmer)}")
        if kmer.max(initial=0) >= 4:
            return np.zeros(0, dtype=np.int64)
        key = _pack_kmers(kmer, self.k)[0]
        lo = np.searchsorted(self._sorted_keys, key, side="left")
        hi = np.searchsorted(self._sorted_keys, key, side="right")
        return np.sort(self._positions[lo:hi])

    def seed_read(
        self,
        query: np.ndarray,
        stride: int = 4,
        max_occurrences: int = 32,
    ) -> list[Seed]:
        """Anchor + extend seeding for a whole read.

        Query k-mers every ``stride`` bases are looked up; each hit is
        extended left and right to a maximal exact match, and
        duplicates (same extended seed reached from different anchors)
        are merged.
        """
        query = np.asarray(query, dtype=np.uint8)
        ref = self.reference
        found: set[tuple[int, int, int]] = set()
        out: list[Seed] = []
        starts = list(range(0, max(1, len(query) - self.k + 1), stride))
        if starts and starts[-1] != len(query) - self.k and len(query) >= self.k:
            starts.append(len(query) - self.k)
        for qb in starts:
            kmer = query[qb : qb + self.k]
            if len(kmer) < self.k:
                continue
            hits = self.lookup(kmer)
            if len(hits) > max_occurrences:
                continue
            for rb in hits:
                seed = _extend_maximal(query, ref, qb, int(rb), self.k)
                key = (seed.qbegin, seed.qend, seed.rbegin)
                if key not in found:
                    found.add(key)
                    out.append(seed)
        out.sort(key=lambda s: (s.qbegin, s.rbegin))
        return out


def _pack_kmers(seq: np.ndarray, k: int) -> np.ndarray:
    """2-bit pack every k-mer of ``seq`` into one integer key."""
    seq = np.asarray(seq, dtype=np.int64)
    n = len(seq) - k + 1
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    keys = np.zeros(n, dtype=np.int64)
    for offset in range(k):
        keys = (keys << 2) | seq[offset : offset + n]
    return keys


def _extend_maximal(
    query: np.ndarray, ref: np.ndarray, qb: int, rb: int, k: int
) -> Seed:
    """Grow an exact k-mer hit to its maximal exact match."""
    qe, re_ = qb + k, rb + k
    while qb > 0 and rb > 0 and query[qb - 1] == ref[rb - 1]:
        qb -= 1
        rb -= 1
    while qe < len(query) and re_ < len(ref) and query[qe] == ref[re_]:
        qe += 1
        re_ += 1
    return Seed(qb, qe, rb)
