"""Hash-based k-mer seeding (the ERT stand-in).

The paper pairs SeedEx with the ERT seeding accelerator; this module
is the software stand-in with the same role: produce anchor seeds fast
at the cost of a bigger index.  Fixed-length k-mers are hashed to
reference positions; query k-mers look up anchors which are then
greedily extended to maximal matches so the chaining stage sees seeds
comparable to SMEMs.
"""

from __future__ import annotations

import numpy as np

from repro.seeding.mems import Seed


class KmerIndex:
    """Exact k-mer hash index over an encoded, N-free reference."""

    def __init__(self, reference: np.ndarray, k: int = 19) -> None:
        reference = np.asarray(reference, dtype=np.int64)
        if k < 1 or k > 31:
            raise ValueError("k must be in [1, 31]")
        if len(reference) < k:
            raise ValueError("reference shorter than k")
        if reference.max(initial=0) >= 4:
            raise ValueError("reference must be N-free for k-mer packing")
        self.k = k
        self.reference = reference.astype(np.uint8)
        keys = _pack_kmers(reference, k)
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._positions = order.astype(np.int64)

    @classmethod
    def from_tables(
        cls,
        reference: np.ndarray,
        k: int,
        sorted_keys: np.ndarray,
        positions: np.ndarray,
    ) -> "KmerIndex":
        """Adopt prebuilt sorted-key/position tables without repacking.

        The persistent index store (:mod:`repro.index`) hands the
        tables over as ``numpy.memmap`` views after CRC verification;
        lookups binary-search them in place, zero-copy.
        """
        self = cls.__new__(cls)
        self.k = int(k)
        self.reference = reference
        self._sorted_keys = sorted_keys
        self._positions = positions
        return self

    def tables(self) -> dict[str, np.ndarray]:
        """The index's array-valued tables, keyed for serialization."""
        return {
            "sorted_keys": self._sorted_keys,
            "positions": self._positions,
        }

    def lookup(self, kmer: np.ndarray) -> np.ndarray:
        """Reference start positions of an exact k-mer (sorted)."""
        kmer = np.asarray(kmer, dtype=np.int64)
        if len(kmer) != self.k:
            raise ValueError(f"need a {self.k}-mer, got {len(kmer)}")
        if kmer.max(initial=0) >= 4:
            return np.zeros(0, dtype=np.int64)
        key = _pack_kmers(kmer, self.k)[0]
        lo = np.searchsorted(self._sorted_keys, key, side="left")
        hi = np.searchsorted(self._sorted_keys, key, side="right")
        return np.sort(self._positions[lo:hi])

    def seed_read(
        self,
        query: np.ndarray,
        stride: int = 4,
        max_occurrences: int = 32,
    ) -> list[Seed]:
        """Anchor + extend seeding for a whole read.

        Query k-mers every ``stride`` bases are looked up; each hit is
        extended left and right to a maximal exact match, and
        duplicates (same extended seed reached from different anchors)
        are merged.
        """
        query = np.asarray(query, dtype=np.uint8)
        ref = self.reference
        k = self.k
        found: set[tuple[int, int, int]] = set()
        out: list[Seed] = []
        if len(query) < k:
            return out
        starts = list(range(0, len(query) - k + 1, stride))
        if starts[-1] != len(query) - k:
            starts.append(len(query) - k)

        # Pack every query k-mer once and look all anchors up with one
        # batched binary search — semantically identical to per-anchor
        # :meth:`lookup` calls, which repack the same bases k times
        # over.  Anchors whose k-mer contains an ambiguous base are
        # invalid (``lookup`` would return no hits for them).
        q64 = query.astype(np.int64)
        keys = _pack_kmers(q64, k)
        bad = np.concatenate(
            ([0], np.cumsum((q64 >= 4).astype(np.int64)))
        )
        anchors = np.asarray(starts, dtype=np.int64)
        valid = (bad[anchors + k] - bad[anchors]) == 0
        los = np.searchsorted(self._sorted_keys, keys[anchors], side="left")
        his = np.searchsorted(self._sorted_keys, keys[anchors], side="right")
        for qb, ok, lo, hi in zip(starts, valid, los, his):
            if not ok or hi - lo > max_occurrences:
                continue
            hits = np.sort(self._positions[lo:hi])
            for rb in hits:
                seed = _extend_maximal(query, ref, qb, int(rb), k)
                key = (seed.qbegin, seed.qend, seed.rbegin)
                if key not in found:
                    found.add(key)
                    out.append(seed)
        out.sort(key=lambda s: (s.qbegin, s.rbegin))
        return out


def _pack_kmers(seq: np.ndarray, k: int) -> np.ndarray:
    """2-bit pack every k-mer of ``seq`` into one integer key."""
    seq = np.asarray(seq, dtype=np.int64)
    n = len(seq) - k + 1
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    keys = np.zeros(n, dtype=np.int64)
    for offset in range(k):
        keys = (keys << 2) | seq[offset : offset + n]
    return keys


def _extend_maximal(
    query: np.ndarray, ref: np.ndarray, qb: int, rb: int, k: int
) -> Seed:
    """Grow an exact k-mer hit to its maximal exact match.

    Mismatch-scan formulation of the base-at-a-time walk: the left
    reach is the trailing run of equal bases before the hit, the right
    reach the leading run after it.
    """
    qe, re_ = qb + k, rb + k
    lmax = min(qb, rb)
    if lmax:
        neq = np.flatnonzero(
            query[qb - lmax : qb] != ref[rb - lmax : rb]
        )
        back = lmax if neq.size == 0 else lmax - 1 - int(neq[-1])
        qb -= back
        rb -= back
    rmax = min(len(query) - qe, len(ref) - re_)
    if rmax:
        neq = np.flatnonzero(
            query[qe : qe + rmax] != ref[re_ : re_ + rmax]
        )
        fwd = rmax if neq.size == 0 else int(neq[0])
        qe += fwd
        re_ += fwd
    return Seed(qb, qe, rb)
