"""SeedEx reproduction: optimal seed extension in subminimal space.

A from-scratch Python reproduction of *SeedEx: A Genome Sequencing
Accelerator for Optimal Alignments in Subminimal Space* (MICRO 2020).

Quick start::

    from repro import SeedExtender
    from repro.genome.sequence import encode

    ext = SeedExtender(band=41)
    out = ext.extend(encode(query), encode(target), h0=seed_score)
    # out.result is bit-equivalent to a full-band Smith-Waterman run.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import CheckConfig, CheckOutcome
from repro.core.extender import SeedExOutput, SeedExtender
from repro.core.globalcheck import GlobalSeedEx

__version__ = "1.0.0"

__all__ = [
    "AffineGap",
    "BWA_MEM_SCORING",
    "CheckConfig",
    "CheckOutcome",
    "GlobalSeedEx",
    "SeedExOutput",
    "SeedExtender",
    "__version__",
]
