"""Paper-reported constants used to calibrate the analytic models.

Every number in this module is copied from the SeedEx paper (MICRO 2020)
text, tables, or figures.  The hardware area/timing/energy models in
:mod:`repro.hw` are parameterized by these constants so that the
benchmark harnesses can print paper-vs-model rows side by side.

Nothing in the *algorithmic* packages (:mod:`repro.align`,
:mod:`repro.core`) depends on this module; the optimality checks are
exact algorithms, not calibrated models.
"""

from __future__ import annotations

# --- Workload (Section VI) -------------------------------------------------

READ_LENGTH_BP = 101
"""Read length of the ERR194147 Platinum Genomes dataset."""

TOTAL_READS = 787_265_109
"""Number of reads aligned for the validation study."""

EXTENSIONS_PER_READ = 10
"""Approximate seed extensions per read (Section II-A)."""

# --- Band analysis (Figures 2, 14) -----------------------------------------

FRACTION_NEEDING_SMALL_BAND = 0.98
"""Fraction of extensions that need band w <= 10 (Figure 2)."""

FRACTION_ESTIMATED_LARGE_BAND = 0.38
"""Fraction of extensions whose *estimated* band exceeds 40 (Figure 2)."""

DEFAULT_BAND = 41
"""The band size chosen for the SeedEx configuration (Section VII-A)."""

FULL_BAND = 101
"""The full band used by the baseline accelerator (w = read length)."""

PASS_RATE_THRESHOLD_ONLY_AT_41 = 0.7176
"""Passing rate with thresholding only at w=41 (Section VII-A)."""

PASS_RATE_ALL_CHECKS_AT_41 = 0.9819
"""Overall passing rate with all checks at w=41 (Section VII-A)."""

EDIT_CHECK_PASS_BOOST_AVG = 0.18
"""Average passing-rate boost from the edit-distance check (Figure 14)."""

BSW_TO_EDIT_CORE_RATIO = 3
"""BSW cores per edit machine in a SeedEx core (Section VII-A)."""

# --- FPGA area (Figures 4, 15, 16; Table II) --------------------------------

EDIT_MACHINE_AREA_OVERHEAD = 0.0553
"""Edit machines as a fraction of total SeedEx resources (Section I/VII)."""

SEEDEX_CORE_LUT_IMPROVEMENT = 2.3
"""LUT utilization improvement of a SeedEx core vs a full-band core."""

EDIT_REDUCED_SCORING_FACTOR = 1.82
"""LUT reduction from the reduced edit scoring datapath (Figure 16b)."""

EDIT_DELTA_ENCODING_FACTOR = 3.11
"""LUT reduction once delta encoding is added (Figure 16b)."""

EDIT_HALF_WIDTH_FACTOR = 6.06
"""LUT reduction once the half-width PE array is added (Figure 16b)."""

# Table II: resource utilization (%) of the combined seeding+SeedEx FPGA.
TABLE2_UTILIZATION = {
    "Seeding": {"LUT": 21.04, "BRAM": 10.10, "URAM": 11.81},
    "SeedEx: Controller": {"LUT": 0.03, "BRAM": 0.01, "URAM": 0.00},
    "SeedEx: I/O Buffers": {"LUT": 0.49, "BRAM": 0.64, "URAM": 0.36},
    "SeedEx: SeedEx Core": {"LUT": 12.47, "BRAM": 1.14, "URAM": 0.15},
    "SeedEx: Total": {"LUT": 12.99, "BRAM": 1.79, "URAM": 0.51},
    "AWS Interface": {"LUT": 19.74, "BRAM": 12.63, "URAM": 12.20},
    "Total": {"LUT": 53.77, "BRAM": 24.52, "URAM": 24.52},
}

# Figure 15: LUT breakdown of the SeedEx-only FPGA (fractions of total).
FIG15_LUT_BREAKDOWN = {
    "BSW cores": 0.55,
    "Edit cores": 0.0553,
    "Controller + arbiter": 0.03,
    "I/O buffers": 0.04,
    "AWS shell interface": 0.32,
}

# --- Throughput / latency (Figure 16c, Section VII-A) -----------------------

SEEDEX_THROUGHPUT_EXT_PER_S = 43.9e6
"""SeedEx FPGA throughput in seed extensions per second."""

ISO_AREA_THROUGHPUT_SPEEDUP = 6.0
"""Iso-area throughput speedup vs the full-band baseline."""

SEEDEX_LATENCY_IMPROVEMENT = 1.9
"""Seed-extension latency improvement of a SeedEx core vs full-band."""

NARROW_BSW_CORES_TOTAL = 36
"""Narrow-band BSW cores on the SeedEx-only FPGA (3 clusters x 4 x 3)."""

FULL_BAND_CORES_TOTAL = 9
"""Full-band BSW cores on the baseline FPGA (routability limit)."""

FPGA_CLOCK_NS = 8.0
"""SeedEx logic clock period on the FPGA (Section VI)."""

SEEDING_CLOCK_NS = 4.0
"""Seeding accelerator clock period (Section VI)."""

AXI_READ_LATENCY_CYCLES = 40
"""AWS AXI-4 input access latency hidden by prefetching (Section V-A)."""

COMPUTE_LATENCY_CYCLES = 100
"""Approximate compute latency per extension (Section V-A)."""

RERUN_RATE = 0.02
"""Fraction of extensions rerun on the host CPU (Section VII-A)."""

RERUN_CORE_AREA_OVERHEAD = 0.06
"""Area overhead of an optional on-FPGA full-band rerun core."""

# --- Application-level results (Figure 17, Section VII-B) -------------------

SPEEDUP_SEEDEX_ONLY_BWAMEM = 1.296
SPEEDUP_SEEDEX_ONLY_BWAMEM2 = 1.335
SPEEDUP_FULL_BWAMEM = 3.75
SPEEDUP_FULL_BWAMEM2 = 2.28
SOFTWARE_SEEDEX_KERNEL_SPEEDUP = 1.14
SOFTWARE_SEEDEX_APP_SPEEDUP_BWAMEM2 = 1.028
READS_PER_S_COMBINED_FPGA = 1.5e6
SEEDING_THREAD_FRACTION = 0.88
CPU_36V_VS_FPGA_SPEEDUP = 1.9

# --- ASIC implementation (Table III, Figure 18) -----------------------------

ASIC_CLOCK_NS = 0.49
ASIC_PROCESS_NM = 28

# Table III rows: configuration -> (area mm^2, power W).
TABLE3_ASIC = {
    "I/O buffer": {"config": "4KiB", "area_mm2": 0.08, "power_w": 0.1395},
    "RAM": {"config": "2.25KiB x 4", "area_mm2": 0.31, "power_w": 0.5482},
    "BSW cores": {"config": "12", "area_mm2": 0.43, "power_w": 0.288},
    "Edit cores": {"config": "4", "area_mm2": 0.04, "power_w": 0.0592},
    "Rerun core": {"config": "1", "area_mm2": 0.084, "power_w": 0.0355},
}
TABLE3_SEEDEX_TOTAL = {"area_mm2": 0.98, "power_w": 1.10}
TABLE3_ERT = {"config": "x8", "area_mm2": 27.78, "power_w": 8.71}
TABLE3_TOTAL = {"area_mm2": 28.76, "power_w": 9.81}

SEEDEX_VS_SILLAX_KERNEL_SPEEDUP = 20.0
SEEDEX_VS_SILLAX_AREA_REDUCTION = 16.0
SEEDEX_VS_SILLAX_POWER_REDUCTION = 10.0
ERT_SEEDEX_VS_ERT_SILLAX_PERF = 1.56
ERT_SEEDEX_VS_ERT_SILLAX_ENERGY = 2.45
ERT_SEEDEX_VS_GENAX_PERF = 14.6
ERT_SEEDEX_VS_GENAX_ENERGY = 2.11

SILLAX_K = 32
"""GenAx Silla parameter; Silla needs O(K^2) states for band w = 2K+1."""

# --- Baseline system (Table I) ----------------------------------------------

F1_VCPUS = 8
F1_DRAM_GIB = 122
FPGA_DRAM_GIB = 64
FPGA_LOGIC_ELEMENTS = 2_500_000
