"""The scalar (row-vectorized) kernel backend.

A thin façade over the repo's original kernels: the per-job banded
extension (:mod:`repro.align.banded`), the row-lockstep batch kernel
(:mod:`repro.align.batchdp`), the relaxed left-entry sweep
(:mod:`repro.align.editdp`) and the scalar S1/S2 threshold math.  This
is the default backend — selecting it changes nothing about how the
pipeline computes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.align import banded, batchdp, editdp, overlapdp
from repro.align.banded import ExtensionResult
from repro.align.editdp import LeftEntryScores
from repro.align.overlapdp import OverlapResult
from repro.align.scoring import AffineGap
from repro.core.thresholds import Thresholds, semiglobal_thresholds


class ScalarKernel:
    """Backend that delegates to the original row-oriented kernels."""

    name = "scalar"

    def extend(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        h0: int,
        w: int | None = None,
    ) -> ExtensionResult:
        """One banded extension through the scalar row kernel."""
        return banded.extend(query, target, scoring, h0, w=w)

    def extend_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        h0s: list[int],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[ExtensionResult]:
        """A batch of extensions through the row-lockstep kernel."""
        return batchdp.extend_batch(queries, targets, h0s, scoring, w=w)

    def overlap(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        w: int | None = None,
    ) -> OverlapResult:
        """One banded suffix-prefix overlap fill (reference form)."""
        return overlapdp.overlap_scalar(query, target, scoring, w=w)

    def overlap_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[OverlapResult]:
        """A batch of overlap fills, one job at a time."""
        if len(queries) != len(targets):
            raise ValueError("queries and targets must align")
        return [
            overlapdp.overlap_scalar(q, t, scoring, w=w)
            for q, t in zip(queries, targets)
        ]

    def left_entry(
        self,
        query: np.ndarray,
        target: np.ndarray,
        band: int,
        left_seed: Callable[[int], int] | int,
        scoring: AffineGap | None = None,
        top_seed: Callable[[int], int] | None = None,
    ) -> LeftEntryScores:
        """The relaxed-edit trapezoid sweep (row form)."""
        return editdp.left_entry_scores(
            query, target, band, left_seed, scoring=scoring,
            top_seed=top_seed,
        )

    def thresholds(
        self,
        scoring: AffineGap,
        qlen: int,
        tlen: int,
        band: int,
        h0: int,
    ) -> Thresholds:
        """Semi-global S1/S2 thresholds (scalar math)."""
        return semiglobal_thresholds(scoring, qlen, tlen, band, h0)
