"""Kernel backends: pluggable implementations of the DP hot loops.

Every compute-heavy primitive the pipeline runs — the banded
extension fill, its batched form, the relaxed-edit trapezoid sweep,
the S1/S2 threshold math — goes through a :class:`KernelBackend`.
Three implementations ship:

* ``scalar`` (:mod:`repro.kernels.scalar`) — the original row-oriented
  kernels, the default;
* ``numpy`` (:mod:`repro.kernels.wavefront`) — anti-diagonal
  (wavefront) kernels that vectorize along the dependency-free
  diagonals, the way the accelerator's systolic array does;
* ``striped`` (:mod:`repro.kernels.striped`) — inter-sequence lockstep
  kernels that shape-bucket a batch and sweep every job of a bucket
  together in a band-offset layout, the way the accelerator fills its
  PE array with many independent extensions.

Backends are bit-identical on everything observable (scores, CIGARs,
boundary channels, thresholds, accept/rerun verdicts) — only the
execution-shape fields (``cells_computed``, ``terminated_early``) may
reflect the backend's own schedule.  The cross-kernel conformance
suite (``tests/kernels/``) enforces this, and CI diffs whole SAM
files between backends byte for byte.

Selection: pass ``kernel=`` to :class:`~repro.core.extender.SeedExtender`
or the engines, use the CLI's ``--kernel`` flag, or set the
``REPRO_KERNEL`` environment variable (the default when nothing is
passed; unset means ``scalar``).
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.align.banded import BatchShapeError, ExtensionResult
from repro.align.editdp import LeftEntryScores
from repro.align.overlapdp import OverlapResult
from repro.align.scoring import AffineGap
from repro.core.thresholds import Thresholds
from repro.kernels.scalar import ScalarKernel
from repro.kernels.striped import StripedKernel
from repro.kernels.wavefront import WavefrontKernel

KERNEL_ENV_VAR = "REPRO_KERNEL"
"""Environment variable consulted when no kernel is named explicitly."""


@runtime_checkable
class KernelBackend(Protocol):
    """The interface every kernel backend implements."""

    name: str

    def extend(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        h0: int,
        w: int | None = None,
    ) -> ExtensionResult:
        """Run one banded extension job."""
        ...

    def extend_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        h0s: list[int],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[ExtensionResult]:
        """Run a batch of extension jobs, results in input order."""
        ...

    def overlap(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        w: int | None = None,
    ) -> OverlapResult:
        """Run one banded suffix-prefix overlap fill."""
        ...

    def overlap_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[OverlapResult]:
        """Run a batch of overlap fills, results in input order."""
        ...

    def left_entry(
        self,
        query: np.ndarray,
        target: np.ndarray,
        band: int,
        left_seed: Callable[[int], int] | int,
        scoring: AffineGap | None = None,
        top_seed: Callable[[int], int] | None = None,
    ) -> LeftEntryScores:
        """Run the relaxed left-entry sweep of the edit check."""
        ...

    def thresholds(
        self,
        scoring: AffineGap,
        qlen: int,
        tlen: int,
        band: int,
        h0: int,
    ) -> Thresholds:
        """Compute the semi-global S1/S2 thresholds."""
        ...


_KERNELS: dict[str, KernelBackend] = {
    ScalarKernel.name: ScalarKernel(),
    WavefrontKernel.name: WavefrontKernel(),
    StripedKernel.name: StripedKernel(),
}


def available_kernels() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_KERNELS))


def get_kernel(
    kernel: str | KernelBackend | None = None,
) -> KernelBackend:
    """Resolve a backend from a name, an instance, or the environment.

    ``None`` consults ``REPRO_KERNEL`` (so CI can flip the whole suite
    without threading a flag through every call site) and falls back
    to ``scalar``.  An already-built backend passes through untouched,
    letting tests inject doubles.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or ScalarKernel.name
    if not isinstance(kernel, str):
        return kernel
    try:
        return _KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {kernel!r}; "
            f"available: {', '.join(available_kernels())}"
        ) from None


__all__ = [
    "KERNEL_ENV_VAR",
    "BatchShapeError",
    "KernelBackend",
    "OverlapResult",
    "ScalarKernel",
    "StripedKernel",
    "WavefrontKernel",
    "available_kernels",
    "get_kernel",
]
