"""Inter-sequence striped batch kernel with shape-bucketing.

The wavefront backend (:mod:`repro.kernels.wavefront`) vectorizes
*within* one extension — across the slots of an anti-diagonal — the
way one systolic array schedules one matrix.  The accelerator's
throughput, and that of SSW/SALoBa-style software aligners, comes from
the other axis: many independent extensions advancing in lockstep.
This backend is that inter-sequence rendition.

Layout.  Each job's band is re-indexed by its **band offset**
``k = j - i + w`` (``k`` in ``[0, 2w]``), so one target row of one job
is a fixed-width stripe of ``W = 2w + 1`` cells regardless of the row
number.  A batch of jobs is then a dense ``(n_jobs, W)`` array per
row, and the whole batch advances one target row per step: every
recurrence channel is a handful of whole-array ufuncs.  In this
coordinate frame the dependencies line up as

* diagonal ``(i-1, j-1)`` — same ``k`` on the previous row;
* E channel ``(i-1, j)`` — ``k + 1`` on the previous row (one shifted
  view, with a permanent zero guard column at index ``W``);
* F channel ``(i, j-1)`` — ``k - 1`` on the same row, folded into one
  running max-plus ``np.maximum.accumulate`` scan per row (the same
  lossless reformulation the scalar kernel uses; the per-``k`` decay
  constant ``(i - w) * ge`` cancels between the scan and the
  read-back, so the scan is row-independent).

Substitution scores are never materialized: a guard-padded transposed
query plane lines the chars up so that row ``i``'s stripe is ``W``
consecutive rows, and one equality compare per row (with target Ns
pre-rewritten to the pad code, folding the ambiguity rule into the
compare) yields the match mask the diagonal consumes directly.  Score
accumulation (local/semi-global scores, ``max_off``, both boundary
channels) is split between tiny per-row reductions — run while the
row's stripe is cache-hot, into ``(rows, n_jobs)`` accumulator
planes — and vectorized post-passes over those planes, so no H-cube
is ever materialized and the post-passes touch only ``O(rows x jobs)``
data.  The boundary-F capture costs nothing extra: in ``k``-space its
source ``max_k(H + k * ge)`` provably equals the F scan's own last
column plus ``gap_open``, which the recurrence computes anyway.

Shape-bucketing.  In the striped layout a job's *query* length is
free — the stripe is ``2w + 1`` wide no matter how long the query —
so the padding cost of a ragged batch is driven by target length
(sweep rows) alone.  ``extend_batch`` classes each job by the
geometric (power-of-two) classes of its lengths, then merges classes
(shortest targets first) into sweep groups of at least
:data:`MIN_BUCKET_JOBS` jobs: splitting a batch saves padded rows but
pays a fixed per-row sweep overhead, so small classes are cheaper
ridden along in a bigger group than swept alone.  Degenerate jobs
(empty sequences, or longer than :data:`MAX_DENSE_LENGTH`) fall back
per job to the wavefront kernel; groups whose band is so wide the
stripe would be wider than the row layout itself
(``2w + 1 > max_q + 1``) take the row-lockstep kernel instead, which
is the cheaper dense layout there.  Both reroutes are bit-identical,
so the choice is purely a cost model.

Semantics are bit-identical to :func:`repro.align.banded.extend`
(``prune=False``) and :func:`repro.align.batchdp.extend_batch` on
everything observable — scores, boundary E/F captures, tie-breaking —
with the usual execution-shape exemptions (``cells_computed`` uses the
lockstep formula; ``terminated_early`` is always ``False``).  The
ragged-batch conformance suite (``tests/kernels/``) enforces this per
job across all three backends.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.align import batchdp
from repro.align.banded import (
    ExtensionResult,
    check_batch_shapes,
    full_band_for,
)
from repro.align.editdp import LeftEntryScores
from repro.align.scoring import AffineGap
from repro.core.thresholds import Thresholds
from repro.genome.sequence import AMBIGUOUS_CODE
from repro.kernels import wavefront
from repro.obs import names

_PAD = 64
"""Query pad code (outside the 3-bit alphabet, never equal to a base)."""

MIN_SHAPE_CLASS = 16
"""Smallest shape class: lengths up to 16 share one class."""

MIN_BUCKET_JOBS = 512
"""Target occupancy of one sweep group.  Shape classes are merged
(shortest targets first) until a group carries at least this many
jobs — below that, the fixed per-row cost of a separate sweep
outweighs the padded rows a split would save."""

MAX_DENSE_LENGTH = 4096
"""Jobs with a sequence longer than this skip the dense packed sweep
and fall back to the per-job wavefront kernel — one outlier must not
force a whole group's padded arrays to its size."""

ROW_SWEEP_COST_CELLS = 65536
"""Cost-model constant for group coalescing: the fixed per-row
dispatch cost of one lockstep sweep step, expressed in stripe-cell
units (roughly alpha / beta for per-row cost alpha + beta * cells).
Merging a short-target group into the next, longer one saves the
short group's entire per-row fixed cost and pays its jobs' padding to
the longer sweep; the merge happens while the fixed cost dominates."""


def shape_class(length: int) -> int:
    """The bucketing class of a length: the next power of two.

    Geometric classes bound the within-class padding at 2x while
    keeping the number of classes logarithmic in the length range, so
    a ragged batch shatters into at most a handful of buckets.
    """
    if length <= MIN_SHAPE_CLASS:
        return MIN_SHAPE_CLASS
    return 1 << int(length - 1).bit_length()


def _sweep_bucket(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    h0s: list[int],
    scoring: AffineGap,
    w_run: int,
    w_report: int,
) -> list[ExtensionResult]:
    """Lockstep banded sweep of one sweep group.

    ``w_run`` is the band the fill actually uses; ``w_report`` the one
    the caller asked for and the results carry.  They differ only when
    ``w_report`` exceeds the group's full-band size — every cell of
    every matrix is in band either way, so the scores are identical
    and only the stripe width (and with it the work) shrinks.
    """
    n = len(queries)
    w = w_run
    W = 2 * w + 1

    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    max_q = int(qlens.max())
    max_t = int(tlens.max())
    jobs_idx = np.arange(n)

    # Jobs are swept in descending target-length order, so the jobs
    # still inside their targets at row i form a prefix of the job
    # axis, and every per-row op slices down to that prefix — the
    # padded tail rows of a ragged group cost (almost) nothing.  The
    # permutation is undone on the results before returning.
    order = np.argsort(-tlens, kind="stable")
    queries = [queries[i] for i in order]
    targets = [targets[i] for i in order]
    h0s = [h0s[i] for i in order]
    qlens = qlens[order]
    tlens = tlens[order]
    h0v = np.array(h0s, dtype=np.int64)
    hist = np.bincount(tlens, minlength=max_t + 1)
    active_count = n - np.cumsum(hist)  # [i - 1] = jobs with tlen >= i

    # Scores are bounded by h0 + m * steps; run the whole sweep in the
    # narrowest dtype whose range provably holds every intermediate
    # (the unclamped E and F terms dip as low as -2 * bound, hence the
    # half-range thresholds) — each halving of the state width halves
    # the memory traffic of every stripe pass.  Either way the results
    # are exact.
    bound = int(h0v.max()) + (m + x + go + max(ge_i, ge_d) * (W + 1)) * (
        max_q + max_t + W + 2
    )
    if bound < 2**14:
        dt = np.int16
    elif bound < 2**30:
        dt = np.int32
    else:
        dt = np.int64

    # Shifted query plane: qxT holds the query so that row ``r + k``
    # is the query char consumed by cell (i = r + 1, k) — i.e.
    # query[(i - w + k) - 1] — with the pad code everywhere the index
    # falls outside the query.  Rows ``i - 1 .. i - 1 + W`` of qxT are
    # then exactly row i's stripe of query chars, and one vectorized
    # compare against the target row yields the whole match mask.  All
    # stripes live in a (W, n) orientation — jobs on the contiguous
    # axis — so both the per-row compares and every reduction down the
    # stripe (row max, F scan) run along numpy's fast axis.
    qx = np.full((n, max_t + W - 1), _PAD, dtype=np.int16)
    for k, q in enumerate(queries):
        # Chars past column max_t + w can never pair with a row <= max_t
        # (j <= i + w), so a long query is clipped to the reachable part.
        reach = min(len(q), max_t + w)
        qx[k, w : w + reach] = q[:reach]
    qxT = np.ascontiguousarray(qx.T)
    tpad = np.full((n, max_t), _PAD - 1, dtype=np.int16)
    for k, t in enumerate(targets):
        tpad[k, : len(t)] = t
    # N never matches (matching the scalar kernel and the oracle):
    # rewriting target Ns to the target pad code — which no query
    # char, N or pad included, ever equals — folds the ambiguity rule
    # into the equality compare itself.
    tpad[tpad == AMBIGUOUS_CODE] = _PAD - 1
    tpadT = np.ascontiguousarray(tpad.T)

    kvec = np.arange(W, dtype=dt)
    kge = kvec * dt(ge_i)
    kcol = kvec[:, None]  # (W, 1), broadcasts across jobs
    # Materialized (W, n) per-slot constants: whole-array ufuncs beat
    # the column-broadcast forms by 2-3x at these shapes.
    kge_full = np.ascontiguousarray(
        np.broadcast_to(kge[:, None], (W, n))
    )
    fterm_full = np.ascontiguousarray(
        np.broadcast_to((kge - go)[:, None], (W, n))
    )

    # Row max + leftmost slot in ONE reduction: pack H and the
    # reversed slot index into H * C + (C - 1 - k) — distinct scores
    # stay ordered, ties prefer the smallest k — whenever the packed
    # value provably fits the dtype (numpy's per-row argmax is a
    # scalar loop; one more amax is not).
    c_shift = (W - 1).bit_length()
    C = 1 << c_shift
    # An int16 state never packs (the shifted scores don't fit); it
    # takes the unpacked path below, whose narrow planes are cheaper
    # than widening every combine to int32 would be.
    limit = 2**31 - 1 if dt is np.int32 else 2**63 - 1
    packed = dt is not np.int16 and bound * C + C - 1 <= limit
    revk = np.ascontiguousarray(
        np.broadcast_to((C - 1 - kcol).astype(dt), (W, n))
    )

    # Per-row accumulator planes: the sweep keeps, for every target
    # row, just the handful of per-job scalars the score post-passes
    # need — the (leftmost) row max and its slot, the column-qlen
    # cell, the lower-edge H/E values, and the F scan's last column.
    # These reductions run while the row's stripe is cache-hot, and
    # the post-passes then touch only O(rows x jobs) data instead of
    # re-traversing an H-cube.
    if packed:
        RKC = np.zeros((max_t + 1, n), dtype=dt)  # packed row max/slot
    else:
        # Unpacked row max + leftmost slot: one narrow amax, then the
        # leftmost maximizer as the *largest reversed index* among the
        # ties — max(eq * (W - 1 - k)) — which stays a fast axis-0
        # reduction where a per-row argmax would be a scalar loop.
        # RK holds the reversed value W - 1 - k until the post-pass.
        RB = np.zeros((max_t + 1, n), dtype=dt)  # row max of H
        RK = np.zeros((max_t + 1, n), dtype=np.int16)  # W - 1 - slot
        eqb = np.empty((W, n), dtype=bool)
        rev16 = np.ascontiguousarray(
            np.broadcast_to((W - 1 - kcol).astype(np.int16), (W, n))
        )
        sl16 = np.empty((W, n), dtype=np.int16)
    GL = np.zeros((max_t + 1, n), dtype=dt)  # H at column qlen
    H0 = np.zeros((max_t + 1, n), dtype=dt)  # H at slot 0 (lower edge)
    E0 = np.zeros((max_t + 1, n), dtype=dt)  # E at slot 0 (lower edge)
    RL = np.zeros((max_t + 1, n), dtype=dt)  # F scan's last column

    # Row stripes carry a permanent zero guard row at index W, so the
    # E channel's ``k + 1`` read never wraps.
    h_full = np.zeros((W + 1, n), dtype=dt)
    h_prev_full = np.zeros((W + 1, n), dtype=dt)
    e_full = np.zeros((W + 1, n), dtype=dt)
    e_prev_full = np.zeros((W + 1, n), dtype=dt)

    # Row 0: seed score at j = 0 (slot w), decaying init-row F gap to
    # the right, dead past the band or the query.
    h_prev_full[w, :] = h0v
    if w >= 1:
        js = np.arange(1, w + 1, dtype=np.int64)
        row0 = np.maximum(0, h0v[None, :] - go - js[:, None] * ge_i)
        row0[js[:, None] > qlens[None, :]] = 0
        h_prev_full[w + 1 : W, :] = row0
    if packed:
        comb = np.empty((W, n), dtype=dt)
        np.multiply(h_prev_full[:W], C, out=comb)
        np.add(comb, revk, out=comb)
        np.amax(comb, axis=0, out=RKC[0])
    else:
        np.amax(h_prev_full[:W], axis=0, out=RB[0])
        np.equal(h_prev_full[:W], RB[0][None, :], out=eqb)
        np.multiply(eqb, rev16, out=sl16)
        np.amax(sl16, axis=0, out=RK[0])
    GL[0] = h_prev_full[np.minimum(qlens + w, W - 1), jobs_idx]

    # The query-kill mask (k <= qlen - i + w) loses exactly one slot
    # per job per row, so it is maintained by a one-slot scatter
    # instead of a fresh whole-stripe comparison; row W absorbs the
    # not-yet-started scatters, slot 0 the long-finished ones (both
    # idempotent).  Initialized to row 0's state, k <= qlen + w.
    pred = np.less_equal(
        np.arange(W + 1, dtype=np.int64)[:, None], (qlens + w)[None, :]
    )

    # Scratch, reused every row; every ufunc writes through out=.
    diag = np.empty((W, n), dtype=dt)
    eq_s = np.empty((W, n), dtype=bool)
    lv_s = np.empty((W, n), dtype=bool)
    g = np.empty((W, n), dtype=dt)
    run = np.empty((W, n), dtype=dt)
    run2 = np.empty((W, n), dtype=dt)
    f = np.zeros((W, n), dtype=dt)  # slot 0 stays 0 (no in-band left)
    kcut = np.empty(n, dtype=np.int64)
    scat = np.empty(n, dtype=np.int64)
    kq_gather = np.empty(n, dtype=np.int64)
    qlw = qlens + w
    mx = dt(m + x)

    for i in range(1, max_t + 1):
        na = int(active_count[i - 1])
        hp = h_prev_full[:W, :na]
        hps = h_prev_full[1:, :na]
        hc = h_full[:W, :na]
        ec = e_full[:W, :na]
        eps = e_prev_full[1:, :na]
        ji = jobs_idx[:na]

        # E channel: k + 1 on the previous row (guarded shifted views).
        # Stored UNCLAMPED: whenever the true (clamped) E is positive
        # the unclamped chain equals it exactly (by induction the
        # clamp only ever bites at zero crossings), and everywhere the
        # true E is zero the surrogate is <= 0 — harmless, because H
        # is floored by F >= 0 below and the boundary-E post-pass
        # re-floors at zero itself.  Dropping the clamp saves a whole
        # stripe pass per row.
        np.subtract(hps, go, out=ec)
        np.maximum(ec, eps, out=ec)
        np.subtract(ec, ge_d, out=ec)

        # Init column (j = 0, slot w - i) while the band touches it;
        # E := H there, as in the row kernels.
        if i <= w:
            k0 = w - i
            initv = np.maximum(0, h0v[:na] - go - i * ge_d)
            ec[k0, :] = initv

        # Diagonal: same k on the previous row.  The match mask comes
        # from one compare of qxT's stripe rows against the target
        # row; ANDing in liveness (H > 0) folds the dead-predecessor
        # rule into the same mask, so the diagonal is just
        # ``(hp - x) + mask * (m + x)`` — a dead cell lands at
        # ``hp - x = -x <= 0``, which H's F-floor erases exactly like
        # the row kernels' explicit zero.
        dg = diag[:, :na]
        gg = g[:, :na]
        eqw = eq_s[:, :na]
        lvw = lv_s[:, :na]
        np.equal(qxT[i - 1 : i - 1 + W, :na], tpadT[i - 1, :na], out=eqw)
        np.greater(hp, 0, out=lvw)
        np.logical_and(eqw, lvw, out=eqw)
        np.multiply(eqw, mx, out=dg)
        np.add(dg, hp, out=dg)
        np.subtract(dg, x, out=dg)
        np.maximum(dg, ec, out=gg)
        if i <= w:
            np.maximum(gg[k0], initv, out=gg[k0])

        # F channel: running max-plus scan along k.  The absolute
        # column decay j * ge_i splits into k * ge_i plus a constant
        # per row that cancels between scan and read-back.  The prefix
        # max runs as log-doubling shifted maxima — numpy's own
        # ``maximum.accumulate`` is a scalar loop, while each doubled
        # shift stays a vectorized whole-array maximum.  Ping-ponging
        # between two scratch planes keeps every step overlap-free
        # (an in-place shifted maximum makes numpy buffer-copy the
        # input first).
        rn = run[:, :na]
        rn2 = run2[:, :na]
        ff = f[:, :na]
        np.add(gg, fterm_full[:, :na], out=rn)
        shift = 1
        src, dst = rn, rn2
        while shift < W:
            np.maximum(src[shift:], src[:-shift], out=dst[shift:])
            dst[:shift] = src[:shift]
            src, dst = dst, src
            shift <<= 1
        # F is left UNCLAMPED too, which drops H's explicit zero floor
        # with it: every negative surrogate H sits where the true H is
        # zero (positives are untouched — a positive F read-back never
        # crossed the clamp), and every consumer — liveness, the
        # row/semi-global maxima against scores >= 0, the boundary
        # post-passes — floors negatives back to the exact zeros.
        # Slot 0 keeps its permanent true zero (no in-band left
        # neighbor), so the init column still floors like the row
        # kernels'.
        np.subtract(src[:-1], kge_full[1:, :na], out=ff[1:])

        np.maximum(gg, ff, out=hc)

        # Kill cells past each job's query (k > qlen - i + w): the pad
        # region is strictly right of every valid cell, so its values
        # never feed a valid cell — but they must not reach the score
        # post-passes, and a zeroed H keeps the next row's diagonal
        # and E reads dead too (matching the row kernels' masking).
        kc = kcut[:na]
        sc_i = scat[:na]
        np.subtract(qlw[:na], i, out=kc)
        np.add(kc, 1, out=sc_i)
        np.minimum(sc_i, W, out=sc_i)
        np.maximum(sc_i, 0, out=sc_i)
        pred[sc_i, ji] = False
        np.multiply(hc, pred[:W, :na], out=hc)

        # Per-row accumulator stores, cache-hot: row max + leftmost
        # slot, the column-qlen cell (slot kcut, exactly the last
        # valid slot when it is in the stripe), the lower-edge H/E
        # values, and the F scan's last column.
        if packed:
            cb = comb[:, :na]
            np.multiply(hc, C, out=cb)
            np.add(cb, revk[:, :na], out=cb)
            np.amax(cb, axis=0, out=RKC[i, :na])
        else:
            np.amax(hc, axis=0, out=RB[i, :na])
            np.equal(hc, RB[i][None, :na], out=eqb[:, :na])
            np.multiply(eqb[:, :na], rev16[:, :na], out=sl16[:, :na])
            np.amax(sl16[:, :na], axis=0, out=RK[i, :na])
        kg = kq_gather[:na]
        np.minimum(kc, W - 1, out=kg)
        np.maximum(kg, 0, out=kg)
        GL[i, :na] = hc[kg, ji]
        H0[i, :na] = hc[0]
        E0[i, :na] = ec[0]
        RL[i, :na] = src[W - 1]

        h_full, h_prev_full = h_prev_full, h_full
        e_full, e_prev_full = e_prev_full, e_full

    if packed:
        # Unpack the fused row max / leftmost slot planes.  The
        # arithmetic right shift floors, so the decomposition holds
        # for the negative row maxima the unclamped channels produce.
        RB = RKC >> c_shift
        RK = np.bitwise_and(RKC, C - 1)
        np.subtract(C - 1, RK, out=RK)
    else:
        RK = (W - 1) - RK  # un-reverse the slot indices

    # ---- post-passes over the accumulator planes -----------------------

    rows = np.arange(max_t + 1, dtype=np.int64)
    active_rows = rows[:, None] <= tlens[None, :]  # (T+1, n)

    # Local score: the strict-improvement row scan, vectorized across
    # jobs (rows past a job's target carry garbage and are masked out;
    # they sit after every valid row, so they cannot inflate the
    # running prefix seen by a valid row).
    rb = np.where(active_rows, RB, 0).T  # (n, T+1)
    argj = RK.T + (rows[None, :] - w)  # first max <=> leftmost column
    running = np.maximum.accumulate(np.maximum(rb, h0v[:, None]), axis=1)
    prev = np.empty_like(running)
    prev[:, 0] = h0v
    prev[:, 1:] = running[:, :-1]
    improved = rb > prev
    any_imp = improved.any(axis=1)
    last = max_t - np.argmax(improved[:, ::-1], axis=1)
    last = np.where(any_imp, last, 0)
    lscore = np.where(any_imp, rb[jobs_idx, last], h0v)
    lpos_i = np.where(any_imp, last, 0)
    lpos_j = np.where(any_imp, argj[jobs_idx, last], 0)
    offs = np.where(improved, np.abs(argj - rows[None, :]), 0)
    max_off = offs.max(axis=1)

    # Semi-global score: column qlen is slot qlen - i + w, in the
    # stripe exactly when |i - qlen| <= w (the per-row gather already
    # captured it); first max <=> the strict ascending-row improvement
    # scan of the row kernels.
    kq = qlens[None, :] - rows[:, None] + w  # (T+1, n)
    gok = (kq >= 0) & (kq < W) & active_rows
    gv = np.where(gok, GL, 0)
    gbest = gv.max(axis=0)
    garg = gv.argmax(axis=0)
    has_g = gbest > 0
    gscore = np.where(has_g, gbest, 0)
    gpos = np.where(has_g, garg, -1)

    # Boundary E: the value entering the shaded region at column
    # bj = i - w, from the captured lower-edge H/E channels.
    n_bound = np.minimum(qlens, tlens - w - 1) + 1
    np.clip(n_bound, 0, None, out=n_bound)
    n_bound[tlens <= w] = 0
    max_bound = int(n_bound.max(initial=0))
    boundary_e = np.zeros((n, max(1, max_bound)), dtype=np.int64)
    if w == 0:
        # Degenerate band: row 0's boundary-E capture at (1, 0) — the
        # generic capture below runs from i >= 1 (see the scalar
        # kernel's matching special case).
        first = n_bound > 0
        boundary_e[first, 0] = np.maximum(0, h0v[first] - go - ge_d)
    if max_bound > 0:
        bjs = np.arange(max_bound, dtype=np.int64)
        rows_be = bjs + w
        vals = np.maximum(
            0,
            np.maximum(H0[rows_be] - go, E0[rows_be]) - ge_d,
        )
        maskb = (
            (rows_be[:, None] >= 1)
            & (bjs[:, None] < n_bound[None, :])
            & (rows_be[:, None] + 1 <= tlens[None, :])
        )
        bev = boundary_e[:, :max_bound].T
        bev[maskb] = vals[maskb]

    # Boundary F: the cap entering the above-band region at row i; the
    # decay constants collapse to -(go + (2w + 1) * ge_i) in k-space.
    # The source max_k(H + k * ge_i) equals the F scan's last column
    # plus gap_open: H = max(G, F), every G term sits inside the
    # scan's running max already, every F term reads back from it
    # (F[k] + k*ge = max(k*ge, run[k-1])), and dead/pad cells carry
    # G = 0, so all the extra terms produce caps that clamp to zero.
    # The sweep's own scan thus doubles as the capture, for free.
    n_upper = np.minimum(tlens, qlens - w - 1) + 1
    np.clip(n_upper, 0, None, out=n_upper)
    n_upper[qlens <= w] = 0
    max_upper = int(n_upper.max(initial=0))
    boundary_f = np.zeros((n, max(1, max_upper)), dtype=np.int64)
    has_upper = n_upper > 0
    boundary_f[has_upper, 0] = np.maximum(
        0, h0v[has_upper] - go - (w + 1) * ge_i
    )
    if max_upper > 1:
        rows_bf = np.arange(1, max_upper, dtype=np.int64)
        caps = np.maximum(
            0, RL[rows_bf].astype(np.int64) - W * ge_i
        )
        maskf = rows_bf[:, None] < n_upper[None, :]
        bfv = boundary_f[:, 1:max_upper].T
        bfv[maskf] = caps[maskf]

    # Assemble in sweep order, scatter back to input order (undoing
    # the target-length sort).  tolist() turns each plane into plain
    # Python ints in one pass, far cheaper than per-element int().
    ls_l = lscore.tolist()
    li_l = lpos_i.tolist()
    lj_l = lpos_j.tolist()
    gs_l = gscore.tolist()
    gp_l = gpos.tolist()
    mo_l = max_off.tolist()
    ql_l = qlens.tolist()
    tl_l = tlens.tolist()
    nb_l = n_bound.tolist()
    nu_l = n_upper.tolist()
    dense = 2 * w_report + 1
    out: list[ExtensionResult | None] = [None] * n
    for k, orig in enumerate(order.tolist()):
        out[orig] = ExtensionResult(
            lscore=ls_l[k],
            lpos=(li_l[k], lj_l[k]),
            gscore=gs_l[k],
            gpos=gp_l[k],
            max_off=mo_l[k],
            band=w_report,
            h0=h0s[k],
            qlen=ql_l[k],
            tlen=tl_l[k],
            boundary_e=boundary_e[k, : nb_l[k]].copy(),
            boundary_f=boundary_f[k, : nu_l[k]].copy(),
            cells_computed=min(dense, ql_l[k] + 1) * tl_l[k],
            terminated_early=False,
        )
    return out  # type: ignore[return-value]


def extend_batch(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    h0s: list[int],
    scoring: AffineGap,
    w: int | None = None,
) -> list[ExtensionResult]:
    """Shape-bucketed striped banded extension for a batch of jobs.

    Results come back **in input order, one per job** — bucketing is
    an internal permutation that is always undone (the order contract
    is property-tested across backends).  Mismatched input list
    lengths raise :class:`~repro.align.banded.BatchShapeError`.
    """
    n = check_batch_shapes(queries, targets, h0s)
    if n == 0:
        return []
    for h0 in h0s:
        if h0 < 0:
            raise ValueError("h0 must be non-negative")

    qlens = [len(q) for q in queries]
    tlens = [len(t) for t in targets]
    if w is None:
        w = full_band_for(max(qlens), max(tlens))
    if w < 0:
        raise ValueError("band must be non-negative")

    buckets: dict[tuple[int, int], list[int]] = {}
    fallback: list[int] = []
    for idx in range(n):
        ql, tl = qlens[idx], tlens[idx]
        if ql == 0 or tl == 0 or max(ql, tl) > MAX_DENSE_LENGTH:
            fallback.append(idx)
        else:
            # Target class first: in the striped layout the sweep
            # length (and with it the padding cost) is set by the
            # target; query raggedness is absorbed by the stripe.
            key = (shape_class(tl), shape_class(ql))
            buckets.setdefault(key, []).append(idx)

    # Merge shape classes (shortest targets first) into sweep groups
    # of at least MIN_BUCKET_JOBS jobs: a small class rides along in a
    # bigger group instead of paying its own per-row sweep overhead.
    groups: list[list[int]] = []
    pending: list[int] = []
    for key in sorted(buckets):
        pending.extend(buckets[key])
        if len(pending) >= MIN_BUCKET_JOBS:
            groups.append(pending)
            pending = []
    if pending:
        groups.append(pending)

    # Cost-model coalescing (see ROW_SWEEP_COST_CELLS): absorb a group
    # into the next, longer-target one while the per-row fixed cost it
    # stops paying exceeds the padded cells its jobs start paying.
    # The active-prefix sweep makes that padding cheaper still — a
    # short job drops out of the merged sweep the row its target ends.
    coalesced: list[list[int]] = []
    for idxs in groups:
        if coalesced:
            prev = coalesced[-1]
            t_prev = max(tlens[i] for i in prev)
            t_next = max(tlens[i] for i in idxs)
            width = min(2 * w + 1, max(qlens[i] for i in prev) + 1)
            if t_prev * ROW_SWEEP_COST_CELLS > width * len(prev) * (
                t_next - t_prev
            ):
                coalesced[-1] = prev + idxs
                continue
        coalesced.append(idxs)
    groups = coalesced

    out: list[ExtensionResult | None] = [None] * n
    pad_cells = 0
    for idxs in groups:
        bq = [queries[i] for i in idxs]
        bt = [targets[i] for i in idxs]
        bh = [h0s[i] for i in idxs]
        bq_max = max(len(q) for q in bq)
        bt_max = max(len(t) for t in bt)
        w_run = min(w, full_band_for(bq_max, bt_max))
        if 2 * w_run + 1 > bq_max + 1:
            # The stripe would be wider than the row layout: the band
            # covers (almost) whole rows, so the row-lockstep kernel
            # is the cheaper dense sweep.  Bit-identical either way.
            results = batchdp.extend_batch(bq, bt, bh, scoring, w=w)
            dense_width = bq_max + 1
        else:
            results = _sweep_bucket(bq, bt, bh, scoring, w_run, w)
            dense_width = 2 * w_run + 1
        for i, res in zip(idxs, results):
            out[i] = res
        pad_cells += sum(
            dense_width * bt_max - min(dense_width, len(q) + 1) * len(t)
            for q, t in zip(bq, bt)
        )

    for idx in fallback:
        out[idx] = wavefront.extend(
            queries[idx], targets[idx], scoring, h0s[idx], w=w
        )

    if obs.enabled():
        reg = obs.get_registry()
        if groups:
            reg.counter(names.KERNEL_BUCKET_TOTAL).inc(len(groups))
            hist = reg.histogram(names.KERNEL_BUCKET_JOBS)
            for idxs in groups:
                hist.observe(len(idxs))
            if pad_cells:
                reg.counter(names.KERNEL_BUCKET_PAD_CELLS).inc(pad_cells)
        if fallback:
            reg.counter(names.KERNEL_FALLBACK_TOTAL).inc(len(fallback))

    return out  # type: ignore[return-value]


def extend(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    w: int | None = None,
) -> ExtensionResult:
    """Single-job striped extension (the batch kernel with n = 1)."""
    return extend_batch(
        [np.asarray(query)], [np.asarray(target)], [h0], scoring, w=w
    )[0]


class StripedKernel:
    """The inter-sequence striped NumPy backend (``--kernel striped``)."""

    name = "striped"

    def extend(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        h0: int,
        w: int | None = None,
    ) -> ExtensionResult:
        """One banded extension through the striped kernel."""
        return extend(query, target, scoring, h0, w=w)

    def extend_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        h0s: list[int],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[ExtensionResult]:
        """A shape-bucketed batch of extensions in lockstep."""
        return extend_batch(queries, targets, h0s, scoring, w=w)

    def overlap(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        w: int | None = None,
    ):
        """One banded overlap fill (the lockstep kernel with n = 1)."""
        from repro.align import overlapdp

        return overlapdp.overlap_batch_lockstep(
            [np.asarray(query)], [np.asarray(target)], scoring, w=w
        )[0]

    def overlap_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        scoring: AffineGap,
        w: int | None = None,
    ):
        """A shape-bucketed batch of overlap fills in lockstep."""
        from repro.align import overlapdp

        return overlapdp.overlap_batch_lockstep(
            queries, targets, scoring, w=w
        )

    def left_entry(
        self,
        query: np.ndarray,
        target: np.ndarray,
        band: int,
        left_seed: Callable[[int], int] | int,
        scoring: AffineGap | None = None,
        top_seed: Callable[[int], int] | None = None,
    ) -> LeftEntryScores:
        """The relaxed-edit trapezoid sweep (anti-diagonal form)."""
        return wavefront.left_entry_wave(
            query, target, band, left_seed, scoring=scoring,
            top_seed=top_seed,
        )

    def thresholds(
        self,
        scoring: AffineGap,
        qlen: int,
        tlen: int,
        band: int,
        h0: int,
    ) -> Thresholds:
        """Semi-global S1/S2 thresholds (vectorized math)."""
        return wavefront.semiglobal_thresholds_wave(
            scoring, qlen, tlen, band, h0
        )
