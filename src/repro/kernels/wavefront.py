"""Anti-diagonal (wavefront) NumPy kernels.

The banded extension recurrence has a data dependence structure that
makes anti-diagonals the natural vector unit: every predecessor of
cell ``(i, j)`` — ``(i-1, j)`` for the E channel, ``(i, j-1)`` for the
F channel, ``(i-1, j-1)`` for the substitution — lies on diagonal
``d-1`` or ``d-2`` where ``d = i + j``.  A whole diagonal is therefore
data-parallel, which is exactly how SALoBa-style GPU aligners and the
systolic array of the paper's BSW cores schedule the fill.  This
module is the software rendition: the fill advances one diagonal per
step and vectorizes across **jobs x diagonal slots**, fusing the
batch dimension with the wavefront the way the accelerator fuses its
PE columns.

Layout.  Diagonal ``d`` holds band cells ``(i, d - i)`` for ``i`` in
``[i_lo(d), i_hi(d)]`` where the band ``|i - j| <= w`` clamps
``ceil((d-w)/2) <= i <= floor((d+w)/2)`` and the matrix clamps
``max(0, d - max_q) <= i <= min(max_t, d)``.  A cell's slot is
``s = i - i_lo(d)``; predecessors on earlier diagonals are reached by
shifting slot indices by the difference of the diagonals' ``i_lo``
values (:func:`_shift`).  All state for one diagonal is an
``(n_jobs, width)`` array, so every ufunc touches the whole batch.

Semantics are bit-identical to :func:`repro.align.banded.extend`
(``prune=False``) and :func:`repro.align.batchdp.extend_batch`,
including the boundary E/F channel captures and tie-breaking —
property-tested against both in ``tests/kernels/test_conformance.py``.
:func:`left_entry_wave` is the matching anti-diagonal rendition of the
relaxed-edit trapezoid sweep (:func:`repro.align.editdp.left_entry_scores`)
and :func:`thresholds_batch` vectorizes the S1/S2 math.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.align.banded import (
    ExtensionResult,
    boundary_length,
    check_batch_shapes,
    full_band_for,
    upper_boundary_length,
)
from repro.align.editdp import LeftEntryScores
from repro.align.scoring import AffineGap, relaxed_edit_scoring
from repro.core.thresholds import Thresholds
from repro.genome.sequence import AMBIGUOUS_CODE

_PAD = 64
"""Query pad code (outside the 3-bit alphabet, never equal to a base)."""

_NEG = -(10**15)
"""Sentinel for masked cells in max-reductions."""


def _shift(arr: np.ndarray, k: int, width: int) -> np.ndarray:
    """``out[:, s] = arr[:, s + k]``, zero-filled outside ``arr``.

    Aligns a predecessor diagonal's slots onto the current diagonal's:
    ``k`` is the difference of the two diagonals' ``i_lo`` values (plus
    the row offset of the dependence).  Zero fill is the dead-cell
    value, so out-of-band and out-of-matrix predecessors contribute
    nothing — the same convention as the row kernels' zero-filled
    arrays.
    """
    n = arr.shape[0]
    out = np.zeros((n, width), dtype=np.int64)
    lo = max(0, -k)
    hi = min(width, arr.shape[1] - k)
    if hi > lo:
        out[:, lo:hi] = arr[:, lo + k : hi + k]
    return out


def extend_batch(
    queries: list[np.ndarray],
    targets: list[np.ndarray],
    h0s: list[int],
    scoring: AffineGap,
    w: int | None = None,
) -> list[ExtensionResult]:
    """Anti-diagonal banded extension for a batch of jobs.

    Returns results in input order, each bit-identical to
    ``banded.extend(query, target, scoring, h0, w=w, prune=False)``
    except for the execution-shape fields (``cells_computed`` uses the
    lockstep formula; ``terminated_early`` is always ``False``) —
    exactly the contract of :func:`repro.align.batchdp.extend_batch`.
    Mismatched input list lengths raise
    :class:`~repro.align.banded.BatchShapeError`.
    """
    n = check_batch_shapes(queries, targets, h0s)
    if n == 0:
        return []
    for h0 in h0s:
        if h0 < 0:
            raise ValueError("h0 must be non-negative")

    qlens = np.array([len(q) for q in queries], dtype=np.int64)
    tlens = np.array([len(t) for t in targets], dtype=np.int64)
    max_q = int(qlens.max())
    max_t = int(tlens.max())
    if w is None:
        w = full_band_for(max_q, max_t)
    if w < 0:
        raise ValueError("band must be non-negative")

    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    m = scoring.match
    x = scoring.mismatch

    qpad = np.full((n, max_q), _PAD, dtype=np.int64)
    tpad = np.full((n, max_t), _PAD - 1, dtype=np.int64)
    for k, (q, t) in enumerate(zip(queries, targets)):
        qpad[k, : len(q)] = q
        tpad[k, : len(t)] = t
    h0v = np.array(h0s, dtype=np.int64)

    # Per-row accumulators, finalized after the sweep: the in-band row
    # maximum (leftmost column on ties — columns arrive in increasing
    # diagonal order, so strict-improvement updates resolve ties the
    # same way the row kernels' argmax does) and the F-cap source
    # max(H + j*ge_i) the upper-boundary capture reads.
    row_best = np.zeros((n, max_t + 1), dtype=np.int64)
    row_argj = np.zeros((n, max_t + 1), dtype=np.int64)
    fsrc = np.full((n, max_t + 1), _NEG, dtype=np.int64)

    gscore = np.zeros(n, dtype=np.int64)
    gpos = np.full(n, -1, dtype=np.int64)

    n_bound = np.minimum(qlens, tlens - w - 1) + 1
    np.clip(n_bound, 0, None, out=n_bound)
    n_bound[tlens <= w] = 0
    boundary_e = np.zeros(
        (n, max(1, int(n_bound.max(initial=0)))), dtype=np.int64
    )
    n_upper = np.minimum(tlens, qlens - w - 1) + 1
    np.clip(n_upper, 0, None, out=n_upper)
    n_upper[qlens <= w] = 0
    boundary_f = np.zeros(
        (n, max(1, int(n_upper.max(initial=0)))), dtype=np.int64
    )
    has_upper = n_upper > 0
    boundary_f[has_upper, 0] = np.maximum(
        0, h0v[has_upper] - go - (w + 1) * ge_i
    )

    jobs_idx = np.arange(n)

    # Diagonal state, tagged with the diagonal it belongs to: empty
    # diagonals are skipped (w = 0 leaves every odd one without a band
    # cell), so a predecessor may be missing — its cells are then all
    # dead or out of band and contribute zeros.
    h_p1 = e_p1 = f_p1 = h_p2 = None
    i_lo_p1 = i_lo_p2 = 0
    d_p1 = d_p2 = -9

    for d in range(0, max_t + max_q + 1):
        i_lo = max(0, d - max_q, -((w - d) // 2) if d > w else 0)
        i_hi = min(max_t, d, (d + w) // 2)
        if i_lo > i_hi:
            continue
        width = i_hi - i_lo + 1
        i_cells = np.arange(i_lo, i_hi + 1, dtype=np.int64)
        j_cells = d - i_cells
        valid = (i_cells[None, :] <= tlens[:, None]) & (
            j_cells[None, :] <= qlens[:, None]
        )

        if d == 0:
            h_cur = h0v[:, None].copy()
            e_cur = np.zeros((n, 1), dtype=np.int64)
            f_cur = np.zeros((n, 1), dtype=np.int64)
        else:
            # E channel: vertical from (i-1, j) on diagonal d-1.
            # F channel: horizontal from (i, j-1) on diagonal d-1.
            if d_p1 == d - 1:
                up_h = _shift(h_p1, i_lo - 1 - i_lo_p1, width)
                up_e = _shift(e_p1, i_lo - 1 - i_lo_p1, width)
                left_h = _shift(h_p1, i_lo - i_lo_p1, width)
                left_f = _shift(f_p1, i_lo - i_lo_p1, width)
            else:
                up_h = np.zeros((n, width), dtype=np.int64)
                up_e = left_h = left_f = up_h
            e_cur = np.maximum(0, np.maximum(up_h - go, up_e) - ge_d)
            f_cur = np.maximum(0, np.maximum(left_h - go, left_f) - ge_i)

            # Substitution from (i-1, j-1) on diagonal d-2.  The
            # target slice is contiguous in i; the query slice runs
            # backward (j = d - i decreases as i grows).
            if d_p1 == d - 2:
                diag_src, diag_src_lo = h_p1, i_lo_p1
            elif d_p2 == d - 2:
                diag_src, diag_src_lo = h_p2, i_lo_p2
            else:
                diag_src, diag_src_lo = None, 0
            if diag_src is not None and i_hi >= 1 and d - i_lo >= 1:
                diag_h = _shift(diag_src, i_lo - 1 - diag_src_lo, width)
                tlo = max(i_lo, 1)
                tchars = np.full((n, width), _PAD - 1, dtype=np.int64)
                tchars[:, tlo - i_lo :] = tpad[:, tlo - 1 : i_hi]
                qchars = np.full((n, width), _PAD, dtype=np.int64)
                jhi = d - i_lo  # j of slot 0
                jlo = d - i_hi  # j of the last slot
                qlo = max(jlo, 1)
                # slots with j >= qlo: s <= d - qlo - i_lo.
                s_hi = d - qlo - i_lo
                qchars[:, : s_hi + 1] = qpad[:, qlo - 1 : jhi][:, ::-1]
                sub = np.where(
                    (tchars == qchars) & (tchars != AMBIGUOUS_CODE), m, -x
                )
                diag = np.where(diag_h > 0, diag_h + sub, 0)
            else:
                diag = np.zeros((n, width), dtype=np.int64)

            h_cur = np.maximum(np.maximum(diag, e_cur), f_cur)

            # Special cells override the generic recurrence.
            if i_lo == 0:
                # Row 0 (slot 0): the decaying init-row F gap.
                top = np.where(
                    d <= qlens, np.maximum(0, h0v - go - d * ge_i), 0
                )
                h_cur[:, 0] = top
                e_cur[:, 0] = 0
                f_cur[:, 0] = top
            if i_hi == d:
                # Column 0 (last slot): the init column, E := H as in
                # the row kernels.
                init = np.where(
                    d <= tlens, np.maximum(0, h0v - go - d * ge_d), 0
                )
                h_cur[:, -1] = init
                e_cur[:, -1] = init
                f_cur[:, -1] = 0

        h_cur[~valid] = 0
        e_cur[~valid] = 0
        f_cur[~valid] = 0

        # Row-max accumulators: each row appears once per diagonal.
        seg_best = row_best[:, i_lo : i_hi + 1]
        imp = h_cur > seg_best
        seg_best[imp] = h_cur[imp]
        seg_arg = row_argj[:, i_lo : i_hi + 1]
        seg_arg[imp] = np.broadcast_to(j_cells, imp.shape)[imp]

        # F-cap source: in-band cells contribute H + j*ge_i (dead
        # cells included, matching the row kernels).
        cand = np.where(valid, h_cur + j_cells[None, :] * ge_i, _NEG)
        seg_src = fsrc[:, i_lo : i_hi + 1]
        np.maximum(seg_src, cand, out=seg_src)

        # Semi-global capture at column qlen: cell (d - qlen, qlen).
        gi = d - qlens
        g_ok = (gi >= i_lo) & (gi <= i_hi) & (gi <= tlens)
        if g_ok.any():
            rows = jobs_idx[g_ok]
            vals = h_cur[rows, gi[g_ok] - i_lo]
            better = vals > gscore[rows]
            rows = rows[better]
            gscore[rows] = vals[better]
            gpos[rows] = gi[g_ok][better]

        # Boundary-E capture: the band's lower-edge cell (bj + w, bj)
        # sits on diagonal d = 2*bj + w.
        if d >= w and (d - w) % 2 == 0:
            bj = (d - w) // 2
            bi = bj + w
            if i_lo <= bi <= i_hi:
                s = bi - i_lo
                cap = bj < n_bound
                if cap.any():
                    vals = np.maximum(
                        0,
                        np.maximum(h_cur[:, s] - go, e_cur[:, s]) - ge_d,
                    )
                    boundary_e[cap, bj] = vals[cap]

        h_p2, i_lo_p2, d_p2 = h_p1, i_lo_p1, d_p1
        h_p1, e_p1, f_p1, i_lo_p1, d_p1 = h_cur, e_cur, f_cur, i_lo, d

    # Upper-boundary F caps from the accumulated row sources.
    max_upper = int(n_upper.max(initial=0))
    if max_upper > 1:
        iu = np.arange(max_upper, dtype=np.int64)
        mask = (iu[None, :] >= 1) & (iu[None, :] < n_upper[:, None])
        caps = np.maximum(
            0, fsrc[:, :max_upper] - go - (iu[None, :] + w + 1) * ge_i
        )
        boundary_f[:, :max_upper][mask] = caps[mask]

    # Degenerate band: row 0's boundary-E capture at (1, 0) (see the
    # matching special case in the row kernels).
    if w == 0:
        first = n_bound > 0
        boundary_e[first, 0] = np.maximum(0, h0v[first] - go - ge_d)

    # Local-score post-pass: the strict-improvement row scan,
    # vectorized across jobs (same accumulator semantics as
    # fullmatrix._scan_scores_vectorized).
    running = np.maximum.accumulate(
        np.maximum(row_best, h0v[:, None]), axis=1
    )
    prev = np.empty_like(running)
    prev[:, 0] = h0v
    prev[:, 1:] = running[:, :-1]
    improved = row_best > prev
    any_imp = improved.any(axis=1)
    last = max_t - np.argmax(improved[:, ::-1], axis=1)
    last = np.where(any_imp, last, 0)
    lscore = np.where(any_imp, row_best[jobs_idx, last], h0v)
    lpos_i = np.where(any_imp, last, 0)
    lpos_j = np.where(any_imp, row_argj[jobs_idx, last], 0)
    rows_i = np.arange(max_t + 1, dtype=np.int64)
    offs = np.where(improved, np.abs(row_argj - rows_i[None, :]), 0)
    max_off = offs.max(axis=1)

    out = []
    for k in range(n):
        out.append(
            ExtensionResult(
                lscore=int(lscore[k]),
                lpos=(int(lpos_i[k]), int(lpos_j[k])),
                gscore=int(gscore[k]),
                gpos=int(gpos[k]),
                max_off=int(max_off[k]),
                band=w,
                h0=int(h0s[k]),
                qlen=int(qlens[k]),
                tlen=int(tlens[k]),
                boundary_e=boundary_e[k, : n_bound[k]].copy(),
                boundary_f=boundary_f[k, : n_upper[k]].copy(),
                cells_computed=int(
                    min(2 * w + 1, qlens[k] + 1) * tlens[k]
                ),
                terminated_early=False,
            )
        )
    return out


def extend(
    query: np.ndarray,
    target: np.ndarray,
    scoring: AffineGap,
    h0: int,
    w: int | None = None,
) -> ExtensionResult:
    """Single-job wavefront extension (the batch kernel with n=1)."""
    return extend_batch([np.asarray(query)], [np.asarray(target)],
                        [h0], scoring, w=w)[0]


def left_entry_wave(
    query: np.ndarray,
    target: np.ndarray,
    band: int,
    left_seed: Callable[[int], int] | int,
    scoring: AffineGap | None = None,
    top_seed: Callable[[int], int] | None = None,
) -> LeftEntryScores:
    """Anti-diagonal rendition of the relaxed trapezoid sweep.

    Bit-identical to :func:`repro.align.editdp.left_entry_scores`
    (including its N-matches-N relaxed substitution — looser than the
    production scheme, hence still admissible).  The free-insertion
    running max becomes a per-cell ``left`` dependence on diagonal
    ``d-1``, so each diagonal of the half-matrix is one vector op
    instead of a per-row scan.
    """
    if scoring is None:
        scoring = relaxed_edit_scoring()
    if scoring.gap_open != 0 or scoring.gap_extend_ins != 0:
        raise ValueError(
            "left-entry DP requires zero-cost insertions "
            "(free horizontal propagation)"
        )
    query = np.asarray(query, dtype=np.int64)
    target = np.asarray(target, dtype=np.int64)
    qlen = len(query)
    tlen = len(target)
    if tlen <= band:
        return LeftEntryScores(np.zeros(0, dtype=np.int64), 0)

    seed = left_seed if callable(left_seed) else (lambda _i: int(left_seed))
    m = scoring.match
    x = scoring.mismatch
    ge_d = scoring.gap_extend_del

    n_rows = tlen - band  # rows r = 0..n_rows-1 are matrix rows band+1+r
    seeds = np.array(
        [max(0, seed(band + 1 + r)) for r in range(n_rows)], dtype=np.int64
    )
    tops = None
    if top_seed is not None:
        # top_seed(bj) lands at (i, bj) with bj = i - band - 1 = r.
        tops = np.array(
            [top_seed(r) if r <= qlen else 0 for r in range(n_rows)],
            dtype=np.int64,
        )

    last_column = np.zeros(n_rows, dtype=np.int64)
    h_p1 = h_p2 = None
    r_lo_p1 = r_lo_p2 = 0
    for d in range(0, n_rows + qlen + 1):
        r_lo = max(0, d - qlen)
        r_hi = min(n_rows - 1, d)
        if r_lo > r_hi:
            break
        width = r_hi - r_lo + 1
        r_cells = np.arange(r_lo, r_hi + 1, dtype=np.int64)
        j_cells = d - r_cells

        base = np.zeros(width, dtype=np.int64)
        if r_hi == d:
            # Column 0 (last slot): the left-boundary seed.
            base[-1] = seeds[d]
        if d >= 1:
            # Up (r-1, j) on d-1 and free left (r, j-1) on d-1.
            up = _shift(h_p1[None, :], r_lo - 1 - r_lo_p1, width)[0]
            np.maximum(base, up - ge_d, out=base)
            left = _shift(h_p1[None, :], r_lo - r_lo_p1, width)[0]
            np.maximum(base, left, out=base)
        if d >= 2:
            # Diagonal (r-1, j-1) on d-2, with the relaxed (plain ==)
            # substitution the edit machine uses.
            diag_h = _shift(h_p2[None, :], r_lo - 1 - r_lo_p2, width)[0]
            tchars = target[band + r_cells - 1 + 1]  # target[band + r] ...
            # ... i.e. row i = band + 1 + r consumes target[i - 1].
            qchars = np.full(width, _PAD, dtype=np.int64)
            has_j = j_cells >= 1
            qchars[has_j] = query[j_cells[has_j] - 1]
            sub = np.where(tchars == qchars, m, -x)
            np.maximum(base, np.where(diag_h > 0, diag_h + sub, 0),
                       out=base)
        if tops is not None:
            # Injection cell (r, r) lies on diagonal d = 2r.
            if d % 2 == 0 and r_lo <= d // 2 <= r_hi and d // 2 <= qlen:
                s = d // 2 - r_lo
                base[s] = max(int(base[s]), int(tops[d // 2]))
        np.maximum(base, 0, out=base)

        # Free insertions: within a diagonal the left dependence is
        # already resolved (it lives on d-1), so no scan is needed.
        if r_lo <= d - qlen <= r_hi:
            last_column[d - qlen] = int(base[d - qlen - r_lo])

        h_p2, r_lo_p2 = h_p1, r_lo_p1
        h_p1, r_lo_p1 = base, r_lo

    return LeftEntryScores(last_column, int(last_column.max(initial=0)))


def thresholds_batch(
    scoring: AffineGap,
    qlens: np.ndarray,
    tlens: np.ndarray,
    band: int,
    h0s: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized semi-global S1/S2 (paper Eq. 4-5) for a batch.

    Returns ``(s1, has_s1, s2, has_s2)``; a threshold only applies
    where its ``has_*`` mask is true (the band side has an outside
    region).  Scalar agreement with
    :func:`repro.core.thresholds.semiglobal_thresholds` is
    conformance-tested.
    """
    qlens = np.asarray(qlens, dtype=np.int64)
    tlens = np.asarray(tlens, dtype=np.int64)
    h0s = np.asarray(h0s, dtype=np.int64)
    m = scoring.match
    go = scoring.gap_open
    has_s1 = qlens > band
    has_s2 = tlens > band
    s1 = h0s - (go + band * scoring.gap_extend_ins) + (qlens - band) * m
    s2 = h0s - (go + band * scoring.gap_extend_del) + qlens * m
    return s1, has_s1, s2, has_s2


def semiglobal_thresholds_wave(
    scoring: AffineGap, qlen: int, tlen: int, band: int, h0: int
) -> Thresholds:
    """Per-job façade over :func:`thresholds_batch`."""
    s1, has_s1, s2, has_s2 = thresholds_batch(
        scoring,
        np.array([qlen]),
        np.array([tlen]),
        band,
        np.array([h0]),
    )
    return Thresholds(
        s1=int(s1[0]) if has_s1[0] else None,
        s2=int(s2[0]) if has_s2[0] else None,
    )


class WavefrontKernel:
    """The anti-diagonal NumPy backend (``--kernel numpy``)."""

    name = "numpy"

    def extend(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        h0: int,
        w: int | None = None,
    ) -> ExtensionResult:
        """One banded extension through the wavefront kernel."""
        return extend(query, target, scoring, h0, w=w)

    def extend_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        h0s: list[int],
        scoring: AffineGap,
        w: int | None = None,
    ) -> list[ExtensionResult]:
        """A batch of extensions fused across jobs x diagonal slots."""
        return extend_batch(queries, targets, h0s, scoring, w=w)

    def overlap(
        self,
        query: np.ndarray,
        target: np.ndarray,
        scoring: AffineGap,
        w: int | None = None,
    ):
        """One banded suffix-prefix overlap fill (row-vectorized)."""
        from repro.align import overlapdp

        return overlapdp.overlap_band(query, target, scoring, w=w)

    def overlap_batch(
        self,
        queries: list[np.ndarray],
        targets: list[np.ndarray],
        scoring: AffineGap,
        w: int | None = None,
    ):
        """A batch of overlap fills, row-vectorized per job."""
        from repro.align import overlapdp

        if len(queries) != len(targets):
            raise ValueError("queries and targets must align")
        return [
            overlapdp.overlap_band(q, t, scoring, w=w)
            for q, t in zip(queries, targets)
        ]

    def left_entry(
        self,
        query: np.ndarray,
        target: np.ndarray,
        band: int,
        left_seed: Callable[[int], int] | int,
        scoring: AffineGap | None = None,
        top_seed: Callable[[int], int] | None = None,
    ) -> LeftEntryScores:
        """The relaxed-edit trapezoid sweep (anti-diagonal form)."""
        return left_entry_wave(
            query, target, band, left_seed, scoring=scoring,
            top_seed=top_seed,
        )

    def thresholds(
        self,
        scoring: AffineGap,
        qlen: int,
        tlen: int,
        band: int,
        h0: int,
    ) -> Thresholds:
        """Semi-global S1/S2 thresholds (vectorized math)."""
        return semiglobal_thresholds_wave(scoring, qlen, tlen, band, h0)
