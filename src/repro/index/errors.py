"""The typed error set of the persistent index store.

Every way an index artifact can fail to load has its own exception
class, so callers (the CLI load ladder, the resume check, shard
workers) can react precisely instead of pattern-matching strings —
and so the corruption chaos suite can assert that each injected fault
surfaces as exactly the right type.  All of them are picklable (they
cross process boundaries when a spawn worker refuses an artifact) and
carry structured location data where it exists.

The hierarchy:

* :class:`IndexArtifactError` — the common base; "this artifact is
  unusable", never "the answer is approximate".
* :class:`IndexVersionError` — wrong magic or an unsupported schema
  version: the file is from a different era (or is not an index
  artifact at all) and *might be valid for other code*, so it is
  never overwritten implicitly.
* :class:`IndexCorruptError` — the bytes are damaged: a CRC mismatch,
  truncation, or an impossible section table.  Carries ``section``
  and ``offset`` naming where the damage was detected.
* :class:`IndexDriftError` — the artifact is internally intact but
  does not describe *this* run: reference payload CRC or build
  parameters differ from what the caller is aligning against.
* :class:`IndexMissingError` — the artifact vanished (e.g. between
  shard dispatch and a worker's open); also an ``OSError`` so generic
  file-handling code keeps working.
"""

from __future__ import annotations


class IndexArtifactError(RuntimeError):
    """Base: the index artifact cannot be used for this run."""


class IndexVersionError(IndexArtifactError):
    """Wrong magic bytes or an unsupported schema version."""

    def __init__(
        self, message: str, found: object = None, expected: object = None
    ) -> None:
        super().__init__(message)
        self.found = found
        self.expected = expected

    def __reduce__(self):
        """Pickle support (typed errors cross worker boundaries)."""
        return (type(self), (self.args[0], self.found, self.expected))


class IndexCorruptError(IndexArtifactError):
    """Damaged bytes: CRC mismatch, truncation, or a torn table.

    ``section`` names the artifact section where the damage was
    detected (``"header"`` for the envelope itself); ``offset`` is the
    file offset of that section's first byte, when known.
    """

    def __init__(
        self,
        message: str,
        section: str | None = None,
        offset: int | None = None,
    ) -> None:
        super().__init__(message)
        self.section = section
        self.offset = offset

    def __reduce__(self):
        """Pickle support (typed errors cross worker boundaries)."""
        return (type(self), (self.args[0], self.section, self.offset))


class IndexDriftError(IndexArtifactError):
    """Intact artifact, wrong world: reference or params mismatch.

    ``field`` names the first mismatching header field (e.g.
    ``"reference_crc"``, ``"k"``).
    """

    def __init__(
        self,
        message: str,
        field: str | None = None,
        found: object = None,
        expected: object = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.found = found
        self.expected = expected

    def __reduce__(self):
        """Pickle support (typed errors cross worker boundaries)."""
        return (
            type(self),
            (self.args[0], self.field, self.found, self.expected),
        )


class IndexMissingError(IndexArtifactError, OSError):
    """The artifact file is gone (or was never built).

    Raised with the path it expected, so a shard worker that loses the
    artifact between dispatch and open fails with a typed, actionable
    message instead of a raw ``FileNotFoundError`` traceback from deep
    inside numpy.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path

    def __reduce__(self):
        """Pickle support (typed errors cross worker boundaries)."""
        return (type(self), (self.args[0], self.path))
