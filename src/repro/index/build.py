"""Building a persistent index artifact from an encoded reference.

One build computes the suffix array **once** and derives everything
from it: the FM-index adopts the precomputed array instead of sorting
again, and the k-mer tables pack directly over the same reference.
The assembled sections then go through :func:`repro.index.format.
write_artifact`'s atomic write, so a crash mid-build can never leave a
torn artifact where a good one stood.

Builds are deterministic — same reference, same parameters, same
bytes — which is what makes the fingerprint content-addressed: a
deleted-and-rebuilt artifact still resumes a journaled run, while any
real drift refuses.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import obs
from repro.index import format as fmt
from repro.index.store import LoadedIndex, load_index
from repro.obs import names
from repro.seeding.fmindex import FMIndex
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.suffixarray import build_suffix_array


def build_index(
    reference: np.ndarray,
    path: str | Path,
    *,
    k: int = 19,
    sa_sample_rate: int = 8,
) -> LoadedIndex:
    """Build, atomically persist, and re-open one index artifact.

    ``k`` is the k-mer size of the hash tables (matched against the
    aligner's ``min_seed_length`` when k-mer seeding is requested);
    ``sa_sample_rate`` is the FM-index sampled-SA rate.  Returns the
    artifact re-opened through the full load ladder — the build is
    only reported successful once its own bytes verify.
    """
    path = Path(path)
    reference = np.ascontiguousarray(
        np.asarray(reference, dtype=np.uint8)
    )
    with obs.span(names.SPAN_INDEX_BUILD):
        sa = build_suffix_array(reference).astype(np.int64)
        fm = FMIndex(reference, sa_sample_rate=sa_sample_rate, sa=sa)
        kmer = KmerIndex(reference.astype(np.int64), k=k)
        fm_tables = fm.tables()
        kmer_tables = kmer.tables()
        sections = {
            "reference": reference,
            "sa": sa,
            "fm_bwt": fm_tables["bwt"],
            "fm_c": fm_tables["c"],
            "fm_occ": fm_tables["occ"],
            "fm_sample_rows": fm_tables["sample_rows"],
            "fm_sample_pos": fm_tables["sample_pos"],
            "kmer_keys": kmer_tables["sorted_keys"],
            "kmer_positions": kmer_tables["positions"],
        }
        params = {
            "k": int(k),
            "sa_sample_rate": int(sa_sample_rate),
            "fm_sentinel_row": fm.scalars()["sentinel_row"],
        }
        fmt.write_artifact(
            path,
            sections,
            fmt.reference_crc(reference),
            len(reference),
            params,
        )
    return load_index(path, mmap=True, verify=True)
