"""Persistent, CRC-verified, memory-mapped reference index store.

Seeding structures (suffix array, FM-index tables, k-mer index) are
expensive to build and were previously recomputed by every process on
every run.  This package serializes them once into a single versioned
artifact — ``repro index build`` — and loads them back zero-copy via
``numpy.memmap``, so shard workers and the resident server all share
one set of page-cache pages under both fork and spawn start methods.

Safety before speed: every load climbs a ladder of integrity checks
(magic/schema → header CRC → per-section CRC → fingerprint/drift
pins) and fails with a *typed* error rather than ever serving seeds
from damaged or mismatched bytes.  See ``docs/index.md`` for the
artifact format and the drift rules.
"""

from __future__ import annotations

from repro.index.build import build_index
from repro.index.errors import (
    IndexArtifactError,
    IndexCorruptError,
    IndexDriftError,
    IndexMissingError,
    IndexVersionError,
)
from repro.index.format import (
    MAGIC,
    SCHEMA_VERSION,
    SECTION_NAMES,
    IndexHeader,
    SectionMeta,
    build_fingerprint,
    read_header,
    reference_crc,
)
from repro.index.store import (
    IndexHandle,
    LoadedIndex,
    load_index,
    verify_artifact,
)

__all__ = [
    "IndexArtifactError",
    "IndexCorruptError",
    "IndexDriftError",
    "IndexHandle",
    "IndexHeader",
    "IndexMissingError",
    "IndexVersionError",
    "LoadedIndex",
    "MAGIC",
    "SCHEMA_VERSION",
    "SECTION_NAMES",
    "SectionMeta",
    "build_fingerprint",
    "build_index",
    "load_index",
    "read_header",
    "reference_crc",
    "verify_artifact",
]
