"""Loading side of the persistent index store: the load ladder.

:func:`load_index` is the only way seeds ever come out of an artifact,
and it climbs a strict ladder before handing a single table to the
aligner:

1. envelope — magic and schema (:class:`IndexVersionError` on
   mismatch), header CRC and a section table consistent with the file
   size (:class:`IndexCorruptError`);
2. content — per-section CRC-32 over the on-disk bytes
   (``verify=True``, the default for cold opens);
3. identity — optional fingerprint pin
   (:class:`IndexDriftError` if the artifact on disk is not the one
   the caller was promised);
4. mapping — sections open as read-only ``numpy.memmap`` views
   (``mmap=True``) so every process that opens the same artifact —
   fork or spawn, shard worker or server — shares one set of OS page
   cache pages; ``mmap=False`` materializes private copies instead.

There is no rung below "typed failure": a refused artifact never
degrades into approximate seeds.  The ``--rebuild-index`` fallback
lives above this module (in the CLI), which catches the typed error,
rebuilds, and retries — exactly once.

:class:`IndexHandle` is the picklable capability a parent process
ships to spawn workers: path + pinned fingerprint + schema version.
``handle.open()`` re-runs the ladder in the worker, so an artifact
that vanished or was swapped between dispatch and open surfaces as
:class:`IndexMissingError` / :class:`IndexDriftError` there, never as
silently different seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.index import format as fmt
from repro.index.errors import (
    IndexArtifactError,
    IndexDriftError,
)
from repro.obs import names
from repro.seeding.fmindex import FMIndex
from repro.seeding.kmer_index import KmerIndex


@dataclass(frozen=True)
class IndexHandle:
    """A picklable capability for one specific index artifact.

    Carries everything a worker needs to re-open the artifact *and
    prove it is the same one the parent validated*: the path, the
    pinned content fingerprint, and the schema version.  Crossing a
    process boundary (fork or spawn) costs three small fields — the
    tables themselves travel via the page cache, not the pickle.
    """

    path: str
    fingerprint: str
    schema_version: int

    def open(
        self, *, mmap: bool = True, verify: bool = False
    ) -> "LoadedIndex":
        """Re-open the artifact, enforcing the pinned fingerprint.

        Workers default to ``verify=False``: the parent already CRC'd
        the sections at dispatch time, and the fingerprint pin catches
        a swapped artifact, so workers skip the redundant full read
        and map straight onto the already-warm pages.
        """
        return load_index(
            self.path,
            mmap=mmap,
            verify=verify,
            expected_fingerprint=self.fingerprint,
        )


class LoadedIndex:
    """One verified, opened artifact: tables plus identity checks.

    Seeding structures are materialized lazily
    (:meth:`fm_index` / :meth:`kmer_index`) from the mapped sections,
    so a SMEM-only run never touches the k-mer pages and vice versa.
    """

    def __init__(
        self,
        path: Path,
        header: fmt.IndexHeader,
        arrays: dict[str, np.ndarray],
        mmap: bool,
    ) -> None:
        self.path = path
        self.header = header
        self._arrays = arrays
        self._mmap = mmap
        self._fm: FMIndex | None = None
        self._kmer: KmerIndex | None = None

    @property
    def fingerprint(self) -> str:
        """The artifact's content fingerprint (8 hex chars)."""
        return self.header.fingerprint

    @property
    def reference(self) -> np.ndarray:
        """The encoded reference payload stored in the artifact."""
        return self._arrays["reference"]

    @property
    def suffix_array(self) -> np.ndarray:
        """The full suffix array section."""
        return self._arrays["sa"]

    def handle(self) -> IndexHandle:
        """The picklable capability for re-opening this artifact."""
        return IndexHandle(
            path=str(self.path),
            fingerprint=self.header.fingerprint,
            schema_version=self.header.schema_version,
        )

    def meta(self) -> dict:
        """Identity summary for STATUS payloads and ``index info``."""
        return {
            "path": str(self.path),
            "fingerprint": self.header.fingerprint,
            "schema_version": self.header.schema_version,
            "reference_length": self.header.reference_length,
            "reference_crc": f"{self.header.reference_crc:08x}",
            "k": self.header.k,
            "sa_sample_rate": self.header.sa_sample_rate,
            "mode": "mmap" if self._mmap else "memory",
        }

    def fm_index(self) -> FMIndex:
        """The FM-index, backed directly by the mapped sections."""
        if self._fm is None:
            self._fm = FMIndex.from_tables(
                n=self.header.reference_length,
                sample_rate=self.header.sa_sample_rate,
                sentinel_row=int(self.header.params["fm_sentinel_row"]),
                bwt=self._arrays["fm_bwt"],
                c=self._arrays["fm_c"],
                occ=self._arrays["fm_occ"],
                sample_rows=self._arrays["fm_sample_rows"],
                sample_pos=self._arrays["fm_sample_pos"],
            )
        return self._fm

    def kmer_index(self) -> KmerIndex:
        """The k-mer index, backed directly by the mapped sections."""
        if self._kmer is None:
            self._kmer = KmerIndex.from_tables(
                reference=self._arrays["reference"],
                k=self.header.k,
                sorted_keys=self._arrays["kmer_keys"],
                positions=self._arrays["kmer_positions"],
            )
        return self._kmer

    def check_reference(self, reference: np.ndarray) -> None:
        """Refuse to serve a run over a different reference.

        Cheap length gate first, then the payload CRC — the same
        checksum recorded at build time, so any reference edit
        (even one base) is an :class:`IndexDriftError`.
        """
        found_len = int(len(reference))
        if found_len != self.header.reference_length:
            raise IndexDriftError(
                f"{self.path}: artifact indexes a reference of "
                f"{self.header.reference_length} bases, this run "
                f"aligns against {found_len}",
                field="reference_length",
                found=found_len,
                expected=self.header.reference_length,
            )
        crc = fmt.reference_crc(reference)
        if crc != self.header.reference_crc:
            raise IndexDriftError(
                f"{self.path}: artifact was built from a different "
                f"reference payload (CRC {self.header.reference_crc:08x}"
                f", this run's is {crc:08x}); rebuild with "
                "`repro index build`",
                field="reference_crc",
                found=f"{crc:08x}",
                expected=f"{self.header.reference_crc:08x}",
            )

    def check_kmer_size(self, k: int) -> None:
        """Refuse k-mer seeding at a k the artifact was not built for."""
        if int(k) != self.header.k:
            raise IndexDriftError(
                f"{self.path}: artifact k-mer tables use k="
                f"{self.header.k}, this run requested k={int(k)}; "
                "rebuild with `repro index build --min-seed-length "
                f"{int(k)}`",
                field="k",
                found=int(k),
                expected=self.header.k,
            )


def verify_artifact(path: str | Path) -> fmt.IndexHeader:
    """Climb the full ladder without opening tables; returns header.

    The ``repro index verify`` entry point: envelope checks plus a
    CRC pass over every section, raising the same typed errors
    :func:`load_index` would.
    """
    path = Path(path)
    with obs.span(names.SPAN_INDEX_VERIFY):
        try:
            header = fmt.read_header(path)
            fmt.verify_sections(path, header)
        except IndexArtifactError as exc:
            _count_failure(exc)
            raise
    return header


def load_index(
    path: str | Path,
    *,
    mmap: bool = True,
    verify: bool = True,
    expected_fingerprint: str | None = None,
) -> LoadedIndex:
    """Open one artifact through the load ladder (see module doc)."""
    path = Path(path)
    with obs.span(names.SPAN_INDEX_LOAD):
        try:
            header = fmt.read_header(path)
            if (
                expected_fingerprint is not None
                and header.fingerprint != expected_fingerprint
            ):
                raise IndexDriftError(
                    f"{path}: artifact fingerprint "
                    f"{header.fingerprint} does not match the pinned "
                    f"{expected_fingerprint} (the file changed after "
                    "it was validated)",
                    field="fingerprint",
                    found=header.fingerprint,
                    expected=expected_fingerprint,
                )
            if verify:
                with obs.span(names.SPAN_INDEX_VERIFY):
                    fmt.verify_sections(path, header)
            arrays = {
                name: fmt.open_section(
                    path, header.sections[name], mmap=mmap
                )
                for name in fmt.SECTION_NAMES
            }
        except IndexArtifactError as exc:
            _count_failure(exc)
            raise
    if obs.enabled():
        reg = obs.get_registry()
        reg.counter(
            names.INDEX_LOADS,
            "index artifacts opened",
            mode="mmap" if mmap else "memory",
        ).inc()
        reg.gauge(
            names.INDEX_ARTIFACT_BYTES, "artifact size"
        ).set(float(path.stat().st_size))
    return LoadedIndex(path, header, arrays, mmap)


def _count_failure(exc: IndexArtifactError) -> None:
    """Record one load-ladder refusal under its error kind."""
    if obs.enabled():
        obs.get_registry().counter(
            names.INDEX_VERIFY_FAILURES,
            "load-ladder refusals",
            kind=type(exc).__name__,
        ).inc()
