"""The on-disk format of the persistent reference index artifact.

One artifact file holds every seeding structure the aligner needs —
the suffix array, the FM-index tables, and the k-mer index — as raw
little-endian numpy blocks behind a small self-describing envelope:

```
offset 0   magic            8 bytes   b"REPROIDX"
       8   schema version   u32 LE    SCHEMA_VERSION
      12   header length    u32 LE    byte length of the header JSON
      16   header JSON      canonical (sorted keys) UTF-8 JSON
       +   header CRC-32    u32 LE    over the header JSON bytes
       +   zero padding to the first 64-byte boundary
       +   sections         raw array bytes, each 64-byte aligned
```

The header JSON carries the reference payload CRC + length, the build
parameters, the build-params *fingerprint* (CRC-32 of the canonical
params JSON via :func:`repro.durability.journal.payload_crc` — the
same primitive the durability manifest uses), and a section table:
``name -> {dtype, shape, offset, nbytes, crc}`` with a CRC-32 per
section.  Every field that shapes the artifact is inside the header,
and the header is covered by its own CRC, so any tampering anywhere is
detectable before a single seed is produced.

Builds are **deterministic**: the same reference and parameters always
produce the same bytes (no timestamps, no hostnames), so the
fingerprint is content-addressed — a rebuilt-but-identical artifact
resumes a journaled run, a drifted one is refused.

Writes are atomic (tmp + fsync + rename + directory fsync, the
journal's discipline) so a crash mid-build leaves either the previous
artifact or none, never a torn file.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.durability.journal import atomic_write_bytes, payload_crc
from repro.index.errors import (
    IndexCorruptError,
    IndexMissingError,
    IndexVersionError,
)

MAGIC = b"REPROIDX"
"""The artifact's 8-byte magic prefix."""

SCHEMA_VERSION = 1
"""Bumped whenever the envelope or section set changes shape."""

ALIGNMENT = 64
"""Section payloads start on 64-byte boundaries (mmap/SIMD friendly)."""

_FIXED = struct.Struct("<8sII")
"""magic, schema version, header length."""

_CRC = struct.Struct("<I")

SECTION_NAMES = (
    "reference",
    "sa",
    "fm_bwt",
    "fm_c",
    "fm_occ",
    "fm_sample_rows",
    "fm_sample_pos",
    "kmer_keys",
    "kmer_positions",
)
"""Canonical section order of a schema-1 artifact."""


def reference_crc(reference: np.ndarray) -> int:
    """CRC-32 of the encoded reference payload bytes.

    The drift check's anchor: an artifact only serves runs whose
    in-memory reference has exactly this checksum.
    """
    data = np.ascontiguousarray(
        np.asarray(reference, dtype=np.uint8)
    ).tobytes()
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class SectionMeta:
    """One section table entry: where a block lives and its checksum."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int
    crc: int

    def to_json(self) -> dict:
        """The section's header-JSON representation."""
        return {
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
            "crc": self.crc,
        }

    @classmethod
    def from_json(cls, name: str, payload: dict) -> "SectionMeta":
        """Parse one section table entry back out of the header."""
        return cls(
            name=name,
            dtype=str(payload["dtype"]),
            shape=tuple(int(d) for d in payload["shape"]),
            offset=int(payload["offset"]),
            nbytes=int(payload["nbytes"]),
            crc=int(payload["crc"]),
        )


@dataclass(frozen=True)
class IndexHeader:
    """The parsed artifact header: identity, params, section table."""

    schema_version: int
    reference_crc: int
    reference_length: int
    params: dict
    fingerprint: str
    sections: dict[str, SectionMeta]

    @property
    def k(self) -> int:
        """The k-mer size the artifact was built with."""
        return int(self.params["k"])

    @property
    def sa_sample_rate(self) -> int:
        """The FM-index sampled-SA rate the artifact was built with."""
        return int(self.params["sa_sample_rate"])


def build_fingerprint(
    ref_crc: int, ref_length: int, params: dict
) -> str:
    """Content fingerprint of an artifact: 8-hex, deterministic.

    CRC-32 (:func:`~repro.durability.journal.payload_crc`) over the
    canonical JSON of reference identity + build params + schema.  The
    durability manifest pins this string so ``--resume`` refuses a
    drifted index, and ``@PG``/STATUS report it so every output names
    the index that produced it.
    """
    crc = payload_crc(
        {
            "schema": SCHEMA_VERSION,
            "reference_crc": int(ref_crc),
            "reference_length": int(ref_length),
            "params": params,
        }
    )
    return f"{crc:08x}"


def _pad_to(offset: int, alignment: int = ALIGNMENT) -> int:
    return (offset + alignment - 1) // alignment * alignment


def encode_artifact(
    sections: dict[str, np.ndarray],
    ref_crc: int,
    ref_length: int,
    params: dict,
) -> bytes:
    """Render header + aligned sections into the artifact byte string.

    ``sections`` must cover exactly :data:`SECTION_NAMES`; arrays are
    written in that canonical order so identical inputs yield
    identical bytes.
    """
    missing = set(SECTION_NAMES) - set(sections)
    extra = set(sections) - set(SECTION_NAMES)
    if missing or extra:
        raise ValueError(
            f"section set mismatch (missing {sorted(missing)}, "
            f"extra {sorted(extra)})"
        )
    blocks: list[tuple[str, np.ndarray, bytes]] = []
    for name in SECTION_NAMES:
        arr = np.ascontiguousarray(sections[name])
        blocks.append((name, arr, arr.tobytes()))

    # The header length depends on the offsets, which depend on the
    # header length; offsets are stable after one fixpoint pass
    # because the JSON is rendered with fixed-width values only after
    # the layout converges.
    table: dict[str, SectionMeta] = {}
    header_json = b""
    for _ in range(8):
        offset = _pad_to(_FIXED.size + len(header_json) + _CRC.size)
        new_table = {}
        for name, arr, raw in blocks:
            new_table[name] = SectionMeta(
                name=name,
                dtype=str(arr.dtype),
                shape=tuple(int(d) for d in arr.shape),
                offset=offset,
                nbytes=len(raw),
                crc=zlib.crc32(raw) & 0xFFFFFFFF,
            )
            offset = _pad_to(offset + len(raw))
        payload = {
            "schema": SCHEMA_VERSION,
            "reference_crc": int(ref_crc),
            "reference_length": int(ref_length),
            "params": params,
            "fingerprint": build_fingerprint(
                ref_crc, ref_length, params
            ),
            "sections": {
                name: meta.to_json() for name, meta in new_table.items()
            },
        }
        new_json = json.dumps(payload, sort_keys=True).encode()
        if len(new_json) == len(header_json):
            table = new_table
            header_json = new_json
            break
        header_json = new_json
        table = new_table
    else:  # pragma: no cover — layout always converges in 2 passes
        raise RuntimeError("artifact header layout did not converge")

    out = bytearray()
    out += _FIXED.pack(MAGIC, SCHEMA_VERSION, len(header_json))
    out += header_json
    out += _CRC.pack(zlib.crc32(header_json) & 0xFFFFFFFF)
    for name, _, raw in blocks:
        meta = table[name]
        out += b"\0" * (meta.offset - len(out))
        out += raw
    return bytes(out)


def write_artifact(
    path: str | Path,
    sections: dict[str, np.ndarray],
    ref_crc: int,
    ref_length: int,
    params: dict,
) -> IndexHeader:
    """Encode and atomically persist one artifact; returns its header."""
    data = encode_artifact(sections, ref_crc, ref_length, params)
    atomic_write_bytes(Path(path), data)
    return read_header(path)


def read_header(path: str | Path) -> IndexHeader:
    """Parse and CRC-verify an artifact's envelope (header only).

    The cheap first rungs of the load ladder: magic and schema
    (:class:`IndexVersionError`), envelope integrity and a section
    table consistent with the actual file size
    (:class:`IndexCorruptError`).  Section payloads are *not* read —
    :func:`verify_sections` does that.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            fixed = handle.read(_FIXED.size)
            if len(fixed) < _FIXED.size:
                raise IndexCorruptError(
                    f"{path}: truncated before the fixed header "
                    f"({len(fixed)} bytes)",
                    section="header",
                    offset=0,
                )
            magic, schema, header_len = _FIXED.unpack(fixed)
            if magic != MAGIC:
                raise IndexVersionError(
                    f"{path} is not a repro index artifact "
                    f"(magic {magic!r}, expected {MAGIC!r})",
                    found=magic,
                    expected=MAGIC,
                )
            if schema != SCHEMA_VERSION:
                raise IndexVersionError(
                    f"{path} has schema version {schema}, this build "
                    f"reads {SCHEMA_VERSION}; rebuild it with "
                    "`repro index build`",
                    found=schema,
                    expected=SCHEMA_VERSION,
                )
            header_json = handle.read(header_len)
            crc_raw = handle.read(_CRC.size)
    except FileNotFoundError as exc:
        raise IndexMissingError(
            f"index artifact {path} does not exist", path=str(path)
        ) from exc
    if len(header_json) < header_len or len(crc_raw) < _CRC.size:
        raise IndexCorruptError(
            f"{path}: truncated inside the header "
            f"(need {header_len} header bytes)",
            section="header",
            offset=_FIXED.size,
        )
    (crc,) = _CRC.unpack(crc_raw)
    if (zlib.crc32(header_json) & 0xFFFFFFFF) != crc:
        raise IndexCorruptError(
            f"{path}: header failed its CRC check",
            section="header",
            offset=_FIXED.size,
        )
    try:
        payload = json.loads(header_json)
        sections = {
            name: SectionMeta.from_json(name, meta)
            for name, meta in payload["sections"].items()
        }
        header = IndexHeader(
            schema_version=int(payload["schema"]),
            reference_crc=int(payload["reference_crc"]),
            reference_length=int(payload["reference_length"]),
            params=dict(payload["params"]),
            fingerprint=str(payload["fingerprint"]),
            sections=sections,
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"{path}: header JSON is malformed despite a valid CRC "
            f"({exc})",
            section="header",
            offset=_FIXED.size,
        ) from exc
    if set(header.sections) != set(SECTION_NAMES):
        raise IndexCorruptError(
            f"{path}: section table names do not match schema "
            f"{SCHEMA_VERSION}",
            section="header",
            offset=_FIXED.size,
        )
    expected_fp = build_fingerprint(
        header.reference_crc, header.reference_length, header.params
    )
    if header.fingerprint != expected_fp:
        raise IndexCorruptError(
            f"{path}: recorded fingerprint {header.fingerprint} does "
            f"not match its own header fields ({expected_fp})",
            section="header",
            offset=_FIXED.size,
        )
    for meta in header.sections.values():
        if meta.offset + meta.nbytes > size:
            raise IndexCorruptError(
                f"{path}: section {meta.name!r} extends to byte "
                f"{meta.offset + meta.nbytes} but the file holds only "
                f"{size}",
                section=meta.name,
                offset=meta.offset,
            )
    return header


def open_section(
    path: str | Path, meta: SectionMeta, mmap: bool = True
) -> np.ndarray:
    """Map (or read) one section as an ndarray of its recorded shape.

    ``mmap=True`` returns a read-only ``numpy.memmap`` view — the
    zero-copy path shard workers and the serve process use, sharing
    the OS page cache under both fork and spawn.  ``mmap=False``
    materializes a private in-memory copy (the differential suites pin
    both modes to identical SAM bytes).
    """
    dtype = np.dtype(meta.dtype)
    count = meta.nbytes // dtype.itemsize
    if mmap:
        flat = np.memmap(
            Path(path),
            dtype=dtype,
            mode="r",
            offset=meta.offset,
            shape=(count,),
        )
    else:
        with open(path, "rb") as handle:
            handle.seek(meta.offset)
            raw = handle.read(meta.nbytes)
        if len(raw) < meta.nbytes:
            raise IndexCorruptError(
                f"{path}: section {meta.name!r} truncated "
                f"({len(raw)}/{meta.nbytes} bytes)",
                section=meta.name,
                offset=meta.offset,
            )
        flat = np.frombuffer(raw, dtype=dtype)
    return flat.reshape(meta.shape)


def verify_section(path: str | Path, meta: SectionMeta) -> None:
    """CRC one section's on-disk bytes against its table entry."""
    with open(path, "rb") as handle:
        handle.seek(meta.offset)
        crc = 0
        remaining = meta.nbytes
        while remaining:
            chunk = handle.read(min(1 << 20, remaining))
            if not chunk:
                raise IndexCorruptError(
                    f"{path}: section {meta.name!r} truncated at byte "
                    f"{meta.nbytes - remaining} of {meta.nbytes}",
                    section=meta.name,
                    offset=meta.offset,
                )
            crc = zlib.crc32(chunk, crc)
            remaining -= len(chunk)
    if (crc & 0xFFFFFFFF) != meta.crc:
        raise IndexCorruptError(
            f"{path}: section {meta.name!r} failed its CRC check "
            f"(stored {meta.crc:#010x}, computed {crc & 0xFFFFFFFF:#010x})",
            section=meta.name,
            offset=meta.offset,
        )


def verify_sections(path: str | Path, header: IndexHeader) -> None:
    """CRC every section in canonical order; first failure raises."""
    for name in SECTION_NAMES:
        verify_section(path, header.sections[name])
