"""SeedExtender: the speculate-and-test seed-extension pipeline.

This is the top-level algorithmic API of the reproduction.  It mirrors
the SeedEx system workflow (paper Figure 6/7) in software:

1. run the extension on a **narrow band** (the speculation);
2. apply the **optimality checks**;
3. on failure, **rerun with the full band** (the paper does this on the
   host CPU; the 2% rerun rate is the price of the 6x smaller array).

The result returned to the caller is always bit-equivalent to a
full-band run — either because the checks proved it, or because the
full band actually ran.

>>> from repro import SeedExtender
>>> from repro.genome.sequence import encode
>>> ext = SeedExtender(band=41)
>>> out = ext.extend(encode("ACGTACGTAC"), encode("ACGTTCGTAC"), h0=10)
>>> out.result.gscore >= 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import (
    CheckConfig,
    CheckDecision,
    CheckOutcome,
    OptimalityChecker,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


class ExtenderStats:
    """Running accounting of check outcomes across extensions.

    ``passing_rate`` is Figure 14's y-axis; ``threshold_only_rate``
    counts extensions the thresholding alone would have admitted.

    The counts live in a :class:`~repro.obs.metrics.MetricsRegistry` —
    by default a private one, or a shared registry passed by the
    caller (the CLI passes the process-wide registry so ``repro.cli
    stats``/``--metrics-out`` and these properties report from one
    source of truth).  The public properties are a stable façade over
    the registry-backed counters.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._total = reg.counter(
            names.EXTENSIONS_TOTAL, "extensions checked"
        )
        self._outcomes = {
            outcome: reg.counter(
                names.CHECK_OUTCOME,
                "check decisions by outcome",
                outcome=outcome.value,
            )
            for outcome in CheckOutcome
        }
        self._narrow_cells = reg.counter(
            names.CELLS_NARROW, "narrow-band DP cells filled"
        )
        self._rerun_cells = reg.counter(
            names.CELLS_RERUN, "full-band rerun DP cells filled"
        )
        self._narrow_hist = reg.histogram(
            names.CELLS_PER_EXTENSION,
            "DP cells filled by one extension",
            stage="narrow",
        )
        self._rerun_hist = reg.histogram(
            names.CELLS_PER_EXTENSION,
            "DP cells filled by one extension",
            stage="rerun",
        )

    def record(self, decision: CheckDecision) -> None:
        """Account one check decision."""
        self._total.inc()
        self._outcomes[decision.outcome].inc()

    def record_narrow(self, cells: int) -> None:
        """Account one narrow-band fill of ``cells`` DP cells."""
        self._narrow_cells.inc(cells)
        self._narrow_hist.observe(cells)

    def record_rerun(self, cells: int) -> None:
        """Account one full-band rerun of ``cells`` DP cells."""
        self._rerun_cells.inc(cells)
        self._rerun_hist.observe(cells)

    def reset(self) -> None:
        """Zero every count (registry objects stay registered)."""
        self._total.reset()
        for counter in self._outcomes.values():
            counter.reset()
        self._narrow_cells.reset()
        self._rerun_cells.reset()
        self._narrow_hist.reset()
        self._rerun_hist.reset()

    @property
    def total(self) -> int:
        """Extensions checked so far."""
        return self._total.value

    @property
    def by_outcome(self) -> dict[CheckOutcome, int]:
        """Nonzero check-outcome counts (compatibility façade)."""
        return {
            outcome: counter.value
            for outcome, counter in self._outcomes.items()
            if counter.value
        }

    @property
    def narrow_cells(self) -> int:
        """DP cells filled by narrow-band speculation."""
        return self._narrow_cells.value

    @property
    def rerun_cells(self) -> int:
        """DP cells filled by full-band reruns."""
        return self._rerun_cells.value

    @property
    def passed(self) -> int:
        """Extensions accepted by the checks."""
        return sum(
            n for o, n in self.by_outcome.items() if o.passed
        )

    @property
    def reruns(self) -> int:
        """Extensions sent to the full-band rerun."""
        return self.total - self.passed

    @property
    def passing_rate(self) -> float:
        """Figure 14's overall passing rate (0.0 when empty)."""
        return self.passed / self.total if self.total else 0.0

    @property
    def threshold_only_rate(self) -> float:
        """Fraction admitted by thresholding alone (0.0 when empty)."""
        n = self.by_outcome.get(CheckOutcome.PASS_S2, 0)
        return n / self.total if self.total else 0.0

    @property
    def rerun_rate(self) -> float:
        """Fraction sent to the full-band rerun (0.0 when empty)."""
        return self.reruns / self.total if self.total else 0.0


@dataclass(frozen=True)
class SeedExOutput:
    """One extension's final answer plus its provenance.

    ``result`` is always full-band-equivalent.  ``rerun`` tells whether
    the full band actually had to run; ``narrow_result`` and
    ``decision`` expose the speculation for accounting.
    """

    result: ExtensionResult
    narrow_result: ExtensionResult
    decision: CheckDecision
    rerun: bool


class SeedExtender:
    """Narrow-band extension with guaranteed-optimal results.

    Parameters mirror the paper's configuration space: ``band`` is the
    narrow band (the paper picks 41), ``scoring`` the affine-gap scheme
    (BWA-MEM's default), and ``config`` selects check variants for the
    ablation studies.  ``kernel`` picks the DP backend
    (:func:`repro.kernels.get_kernel`): a name, an instance, or
    ``None`` for the environment default — results are bit-identical
    either way.
    """

    def __init__(
        self,
        band: int = 41,
        scoring: AffineGap = BWA_MEM_SCORING,
        config: CheckConfig | None = None,
        registry: MetricsRegistry | None = None,
        kernel=None,
    ) -> None:
        from repro.kernels import get_kernel

        if band < 1:
            raise ValueError("band must be at least 1")
        self.band = band
        self.scoring = scoring
        self.kernel = get_kernel(kernel)
        self.checker = OptimalityChecker(scoring, config, kernel=self.kernel)
        self.stats = ExtenderStats(registry)

    def extend(
        self,
        query: np.ndarray,
        target: np.ndarray,
        h0: int,
        full_band: int | None = None,
    ) -> SeedExOutput:
        """Extend one (query, target, h0) job.

        ``full_band`` optionally caps the rerun band (BWA-MEM's
        estimated band); the default reruns with the complete matrix.
        """
        with obs.span(names.SPAN_EXTEND_NARROW):
            narrow = self.kernel.extend(
                query, target, self.scoring, h0, w=self.band
            )
        with obs.span(names.SPAN_EXTEND_CHECK):
            decision = self.checker.check(query, target, narrow)
        self.stats.record(decision)
        self.stats.record_narrow(narrow.cells_computed)
        if decision.passed:
            return SeedExOutput(narrow, narrow, decision, rerun=False)
        with obs.span(names.SPAN_EXTEND_RERUN):
            full = self.kernel.extend(
                query, target, self.scoring, h0, w=full_band
            )
        self.stats.record_rerun(full.cells_computed)
        return SeedExOutput(full, narrow, decision, rerun=True)

    def extend_batch(
        self,
        jobs: list[tuple[np.ndarray, np.ndarray, int]],
    ) -> list[SeedExOutput]:
        """Extend a batch of (query, target, h0) jobs in order.

        Order is a contract, not an accident: ``result[k]`` always
        belongs to ``jobs[k]``, regardless of how the active backend
        reorders, buckets, or pads work internally (the striped kernel
        sorts jobs by shape before sweeping and scatters results back).
        Backends raise :class:`repro.align.banded.BatchShapeError` when
        the per-job query/target/h0 lists disagree in length.
        """
        return [self.extend(q, t, h0) for q, t, h0 in jobs]

    def extend_many(
        self,
        jobs: list[tuple[np.ndarray, np.ndarray, int]],
    ) -> list[SeedExOutput]:
        """Batch-vectorized :meth:`extend_batch`.

        All narrow-band runs execute in lockstep through the backend's
        batch kernel, the checks run per job, and the failures rerun
        full-band as a second batch.  Results are bit-identical to
        :meth:`extend_batch`, just much faster — this is the
        accelerator-shaped way to drive the model.

        The same positional contract holds: ``out[k]`` is the result
        for ``jobs[k]`` even when the backend buckets or reorders jobs
        internally, and malformed batches surface as
        :class:`repro.align.banded.BatchShapeError` from the kernel.
        """
        if not jobs:
            return []
        batch_kernel = self.kernel.extend_batch
        queries = [q for q, _, _ in jobs]
        targets = [t for _, t, _ in jobs]
        h0s = [h0 for _, _, h0 in jobs]
        with obs.span(names.SPAN_EXTEND_BATCH, jobs=len(jobs)):
            narrow = batch_kernel(
                queries, targets, h0s, self.scoring, w=self.band
            )
        decisions = []
        rerun_idx = []
        with obs.span(names.SPAN_EXTEND_CHECK, jobs=len(jobs)):
            for k, res in enumerate(narrow):
                decision = self.checker.check(queries[k], targets[k], res)
                self.stats.record(decision)
                self.stats.record_narrow(res.cells_computed)
                decisions.append(decision)
                if not decision.passed:
                    rerun_idx.append(k)
        reruns: dict[int, ExtensionResult] = {}
        if rerun_idx:
            with obs.span(names.SPAN_EXTEND_RERUN, jobs=len(rerun_idx)):
                full = batch_kernel(
                    [queries[k] for k in rerun_idx],
                    [targets[k] for k in rerun_idx],
                    [h0s[k] for k in rerun_idx],
                    self.scoring,
                )
            for k, res in zip(rerun_idx, full):
                reruns[k] = res
                self.stats.record_rerun(res.cells_computed)
        out = []
        for k, res in enumerate(narrow):
            if k in reruns:
                out.append(
                    SeedExOutput(reruns[k], res, decisions[k], True)
                )
            else:
                out.append(SeedExOutput(res, res, decisions[k], False))
        return out

    def reset_stats(self) -> None:
        """Clear the accumulated statistics in place."""
        self.stats.reset()
