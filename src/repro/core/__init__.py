"""SeedEx core: the speculate-and-test optimality-check framework."""

from repro.core.checker import (
    CheckConfig,
    CheckDecision,
    CheckOutcome,
    OptimalityChecker,
)
from repro.core.extender import ExtenderStats, SeedExOutput, SeedExtender
from repro.core.globalcheck import (
    GlobalChecker,
    GlobalOutcome,
    GlobalSeedEx,
)
from repro.core.thresholds import (
    Thresholds,
    global_thresholds,
    semiglobal_thresholds,
)

__all__ = [
    "CheckConfig",
    "CheckDecision",
    "CheckOutcome",
    "ExtenderStats",
    "GlobalChecker",
    "GlobalOutcome",
    "GlobalSeedEx",
    "OptimalityChecker",
    "SeedExOutput",
    "SeedExtender",
    "Thresholds",
    "global_thresholds",
    "semiglobal_thresholds",
]
