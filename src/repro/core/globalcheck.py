"""Optimality checks for banded *global* alignment.

The paper guarantees optimality "targeting global and semi-global
alignments" (footnote 1) and motivates the global case through
minimap2-style long-read aligners, which globally align the gaps
between chained seeds (Section VII-D).  This module is the global
rendition of the Figure 6 workflow:

1. **thresholding** with the sound global S1/S2
   (:func:`repro.core.thresholds.global_thresholds`);
2. a **below-band sweep**: one unclamped relaxed-edit DP over the
   half-matrix under the band corner, seeded with the exact
   init-column values (the column-0 dive) *and* the recorded
   ``lower_e[j]`` boundary-channel values (first departures crossing
   the band's lower edge at column ``j``); its corner value bounds
   every such path wherever it wanders, including back into the band;
3. an **above-band sweep**: the same check run on the transposed
   problem, seeded with the init-row values and the recorded
   ``upper_f[i]`` values.

Arithmetic per-column bounds (entry + all-match - mandatory return
gap) turn out to be useless here: global mode has no dead cells, so
the boundary channels are live everywhere and the all-match assumption
degenerates the bound to ~S2 for *every* case-c input.  The sweeps
look at what is actually outside the band instead — they are the
global analogue of the paper's edit machine, and in hardware they are
the same half-width delta-encoded array, once per side.

``GlobalSeedEx`` packages speculate -> check -> full-band rerun; its
central property (accepted => banded score equals full-band score) is
hypothesis-tested in ``tests/core/test_globalcheck.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.align.editdp import (
    left_entry_scores_global,
    upper_entry_scores_global,
)
from repro.align.fullmatrix import NEG_INF
from repro.align.globalband import GlobalResult, global_align
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.thresholds import Thresholds, global_thresholds


class GlobalOutcome(enum.Enum):
    """Terminal states of the global-mode check workflow."""

    PASS_THRESHOLD = "pass_threshold"
    PASS_CHECKS = "pass_checks"
    FAIL_THRESHOLD = "fail_threshold"
    FAIL_BELOW = "fail_below"
    FAIL_ABOVE = "fail_above"

    @property
    def passed(self) -> bool:
        """True for the two accepting outcomes."""
        return self in (
            GlobalOutcome.PASS_THRESHOLD,
            GlobalOutcome.PASS_CHECKS,
        )


@dataclass(frozen=True)
class GlobalDecision:
    outcome: GlobalOutcome
    score_nb: int
    thresholds: Thresholds
    below_bound: int | None = None
    above_bound: int | None = None

    @property
    def passed(self) -> bool:
        """True when the banded score was certified optimal."""
        return self.outcome.passed


def below_band_bound(
    query: np.ndarray,
    target: np.ndarray,
    result: GlobalResult,
    scoring: AffineGap,
) -> int:
    """Sweep bound on every path that first leaves the band downward."""
    go = scoring.gap_open
    ge_d = scoring.gap_extend_del
    h0 = result.h0
    lower_e = result.lower_e

    def left_seed(i: int) -> int:
        return h0 - go - i * ge_d

    def top_seed(j: int) -> int:
        if j < lower_e.size:
            return int(lower_e[j])
        return NEG_INF

    return left_entry_scores_global(
        query, target, result.band, left_seed, top_seed
    )


def above_band_bound(
    query: np.ndarray,
    target: np.ndarray,
    result: GlobalResult,
    scoring: AffineGap,
) -> int:
    """Sweep bound on every path that first leaves the band upward."""
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    h0 = result.h0
    upper_f = result.upper_f

    def row_seed(j: int) -> int:
        # Entry along the init row: a pure insertion run.
        return h0 - go - j * ge_i

    def boundary_seed(i: int) -> int:
        if i < upper_f.size:
            return int(upper_f[i])
        return NEG_INF

    return upper_entry_scores_global(
        query, target, result.band, row_seed, boundary_seed
    )


class GlobalChecker:
    """The Figure 6 workflow, global edition."""

    def __init__(self, scoring: AffineGap = BWA_MEM_SCORING) -> None:
        self.scoring = scoring

    def check(
        self,
        query: np.ndarray,
        target: np.ndarray,
        result: GlobalResult,
    ) -> GlobalDecision:
        """Decide optimality of one banded global result."""
        thresholds = global_thresholds(
            self.scoring,
            result.qlen,
            result.tlen,
            result.band,
            result.h0,
        )
        score_nb = result.score
        if score_nb <= NEG_INF // 2:
            return GlobalDecision(
                GlobalOutcome.FAIL_THRESHOLD, score_nb, thresholds
            )
        verdict = thresholds.classify(score_nb)
        if verdict == "fail":
            return GlobalDecision(
                GlobalOutcome.FAIL_THRESHOLD, score_nb, thresholds
            )
        if verdict == "pass":
            return GlobalDecision(
                GlobalOutcome.PASS_THRESHOLD, score_nb, thresholds
            )
        below = below_band_bound(query, target, result, self.scoring)
        if below >= score_nb:
            return GlobalDecision(
                GlobalOutcome.FAIL_BELOW, score_nb, thresholds, below
            )
        above = above_band_bound(query, target, result, self.scoring)
        if above >= score_nb:
            return GlobalDecision(
                GlobalOutcome.FAIL_ABOVE,
                score_nb,
                thresholds,
                below,
                above,
            )
        return GlobalDecision(
            GlobalOutcome.PASS_CHECKS, score_nb, thresholds, below, above
        )


@dataclass(frozen=True)
class GlobalSeedExOutput:
    result: GlobalResult
    narrow_result: GlobalResult
    decision: GlobalDecision
    rerun: bool


@dataclass
class GlobalStats:
    total: int = 0
    passed: int = 0

    @property
    def reruns(self) -> int:
        """Alignments that needed the full-band rerun."""
        return self.total - self.passed

    @property
    def passing_rate(self) -> float:
        """Fraction of alignments certified on the narrow band."""
        return self.passed / self.total if self.total else 0.0


class GlobalSeedEx:
    """Speculate-and-test banded global alignment.

    The returned score always equals the full-band global score —
    cheaply when the checks prove the band sufficed.
    """

    def __init__(
        self,
        band: int,
        scoring: AffineGap = BWA_MEM_SCORING,
    ) -> None:
        if band < 0:
            raise ValueError("band must be non-negative")
        self.band = band
        self.scoring = scoring
        self.checker = GlobalChecker(scoring)
        self.stats = GlobalStats()

    def align(
        self, query: np.ndarray, target: np.ndarray, h0: int = 0
    ) -> GlobalSeedExOutput:
        """Banded global alignment with guaranteed-optimal score."""
        band = max(self.band, abs(len(target) - len(query)))
        narrow = global_align(query, target, self.scoring, h0, w=band)
        decision = self.checker.check(query, target, narrow)
        self.stats.total += 1
        if decision.passed:
            self.stats.passed += 1
            return GlobalSeedExOutput(narrow, narrow, decision, False)
        full = global_align(query, target, self.scoring, h0)
        return GlobalSeedExOutput(full, narrow, decision, True)
