"""The edit-distance check (paper Section III-D).

Bounds the paper's "path 2": alignment paths that leave the band
through its left corner — a pure-deletion run down query column 0 past
row ``w``.  An optimistic extra extension runs over everything such a
path can later touch (the half-matrix of rows below the corner,
:func:`repro.align.editdp.left_entry_scores`), seeded with ``S1`` at
the corner — "the theoretical highest score at the circle" — using a
scoring scheme that dominates the production scheme (the relaxed edit
scoring, whose zero-cost insertions are what make the hardware edit
machine cheap).

Because the half-matrix includes band cells the path may re-enter, and
free insertions make rows non-decreasing, the maximum over the DP's
last column — the scores the hardware's augmentation unit reads along
the augmentation path (Figure 10) — bounds every left-entering path at
whatever endpoint it reaches.  If that bound, ``score_ed``, is
strictly below ``score_nb``, no left-entering path can win.  Together
with the threshold check (above-band paths) and the E-score check
(paths crossing the band's lower edge at columns >= 1), this closes
the case analysis of Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.banded import ExtensionResult
from repro.align.editdp import LeftEntryScores, left_entry_scores
from repro.align.scoring import AffineGap, relaxed_edit_scoring
from repro.core.escore import NO_THREAT


@dataclass(frozen=True)
class EditCheckResult:
    """The edit-machine bound and the raw augmentation-path scores."""

    score_ed: int
    scores: LeftEntryScores

    def passes(self, score_nb: int) -> bool:
        """True when no left-entering path can reach score_nb."""
        return self.score_ed < score_nb


def exact_left_seeds(h0: int, scoring: AffineGap):
    """Tighter per-row seeding: the true arrival score at ``(i, 0)``.

    The only way to reach left-boundary cell ``(i, 0)`` is a deletion
    run of ``i`` reference characters, worth
    ``max(0, h0 - go - i*ge_del)``.  The paper instead seeds ``S1`` at
    the corner and lets the relaxed DP propagate it, trading bound
    tightness for hardware simplicity; the difference is measured by
    the ``exact_left_seed`` ablation.
    """
    go = scoring.gap_open
    ge_d = scoring.gap_extend_del

    def seed(i: int) -> int:
        return max(0, h0 - go - i * ge_d)

    return seed


def corner_seed(s1: int, band: int):
    """The paper's seeding: ``S1`` injected at the corner cell only.

    Deeper left-boundary rows receive the score through the DP's own
    vertical propagation (relaxed deletion cost), which dominates the
    true arrival scores because ``S1`` already exceeds the corner's
    true value and the relaxed extension cost never exceeds the
    production cost.
    """

    def seed(i: int) -> int:
        return s1 if i == band + 1 else 0

    return seed


def above_check(
    query: np.ndarray,
    target: np.ndarray,
    result: ExtensionResult,
    scoring: AffineGap,
    region_scoring: AffineGap | None = None,
) -> EditCheckResult:
    """The above-band mirror check, for the local score target.

    The semi-global workflow never needs it: case c requires
    ``score_nb > S1`` and S1 bounds the whole above region.  The
    *local* target (soft-clip workloads) cannot rely on S1 — a clipped
    read's lscore sits far below any all-match bound — so the above
    region gets the same treatment as the below one: one relaxed sweep
    over everything an upward-departing path can touch, seeded with
    the exact init-row arrival values and the recorded upper-edge F
    channel caps (:attr:`ExtensionResult.boundary_f`).
    """
    if region_scoring is None:
        region_scoring = relaxed_edit_scoring()
    if not region_scoring.dominates(scoring):
        raise ValueError(
            "above-check scoring must dominate the production scoring "
            "for the bound to be admissible"
        )
    from repro.align.editdp import upper_entry_scores

    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    h0 = result.h0
    boundary_f = result.boundary_f

    def row_seed(j: int) -> int:
        return h0 - go - j * ge_i

    def boundary_seed(i: int) -> int:
        if i < boundary_f.size:
            return int(boundary_f[i])
        return 0

    scores = upper_entry_scores(
        query, target, result.band, row_seed, boundary_seed,
        region_scoring,
    )
    if scores.last_column.size == 0:
        return EditCheckResult(NO_THREAT, scores)
    score_ab = scores.best if scores.best > 0 else NO_THREAT
    return EditCheckResult(score_ab, scores)


def edit_check(
    query: np.ndarray,
    target: np.ndarray,
    result: ExtensionResult,
    scoring: AffineGap,
    s1: int | None,
    exact_left_seed: bool = True,
    region_scoring: AffineGap | None = None,
    include_top_seeds: bool = False,
    left_entry_impl=None,
) -> EditCheckResult:
    """Run the optimistic left-entry extension and form ``score_ed``.

    ``include_top_seeds=True`` also injects the recorded boundary
    E-channel values along the region's top edge, making the sweep
    bound downward crossings at *every* column — the local-target
    workflow uses this when the all-match E-check arithmetic fails.

    Exact per-row seeding is the default.  The paper seeds the constant
    ``S1`` at the corner, which is sound for its region-only sweep but
    — in this formulation, whose half-matrix also covers the band cells
    a left-entering path can re-enter (necessary to bound exit paths;
    see the module docstring) — inflates the bound past ``S2`` whenever
    the true alignment's suffix diagonal is reachable, making the check
    useless.  ``exact_left_seed=False`` selects the paper's corner-S1
    seeding for the calibration ablation; ``s1`` may be ``None`` only
    when the above-band region does not exist, in which case exact
    seeding is used regardless.

    ``left_entry_impl`` swaps the sweep implementation (a kernel
    backend's ``left_entry``); the default is the row-oriented
    :func:`~repro.align.editdp.left_entry_scores`.
    """
    if region_scoring is None:
        region_scoring = relaxed_edit_scoring()
    if not region_scoring.dominates(scoring):
        raise ValueError(
            "edit-check scoring must dominate the production scoring "
            "for the bound to be admissible"
        )
    if exact_left_seed or s1 is None:
        seed = exact_left_seeds(result.h0, scoring)
    else:
        seed = corner_seed(s1, result.band)
    top_seed = None
    if include_top_seeds:
        boundary_e = result.boundary_e

        def top_seed(j: int) -> int:
            if j < boundary_e.size:
                return int(boundary_e[j])
            return 0

    if left_entry_impl is None:
        left_entry_impl = left_entry_scores
    scores = left_entry_impl(
        query, target, result.band, seed, scoring=region_scoring,
        top_seed=top_seed,
    )
    if scores.last_column.size == 0:
        return EditCheckResult(NO_THREAT, scores)
    score_ed = scores.best if scores.best > 0 else NO_THREAT
    return EditCheckResult(score_ed, scores)
