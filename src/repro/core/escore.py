"""The E-score check (paper Section III-C).

Any alignment path that crosses from the band into the below-band
shaded region does so with a vertical step at some query column ``j``:
it enters region cell ``(j + w + 1, j)`` through the E channel.  The
banded kernel records exactly those E values along the band's lower
edge (:attr:`repro.align.banded.ExtensionResult.boundary_e`), computed
purely from in-band state — a valid upper bound on the entry score of
any path whose first band departure happens there.

After entering at column ``j`` the path can gain at most ``m`` per
remaining query character (only diagonal matches raise the score, and
each consumes a query character), wherever it wanders afterwards —
deeper into the region, back into the band, or to either score
endpoint.  Hence the optimistic bound

    ``scoreMax_E = max_j ( E_j + (N - j) * m )``.

If ``scoreMax_E < score_nb`` no such path can beat the narrow-band
score.  (The paper's Eq. 6 writes the match count as ``n - i + 1`` over
``n`` boundary cells; for a full-span boundary that equals ``N - j + 1``
— one match looser than necessary.  We use the exact ``N - j`` and
expose the paper's variant for the calibration harnesses.)

Column 0 is deliberately excluded: a crossing there is the paper's
"path 2 from the left" — a pure-deletion run down the matrix edge —
and is the edit-distance check's responsibility.  Folding it into this
bound would degenerate it to roughly ``S2`` (all-match from the seed),
forcing a rerun for nearly every case-c extension.
"""

from __future__ import annotations

from repro.align.banded import ExtensionResult
from repro.align.scoring import AffineGap

NO_THREAT = -(10**9)
"""Returned when the shaded region is empty: nothing to bound."""


def score_max_e(
    result: ExtensionResult,
    scoring: AffineGap,
    paper_formula: bool = False,
) -> int:
    """Upper bound on paths entering the shaded region from the top.

    ``paper_formula=True`` reproduces Eq. 6's ``+1`` match-count slack
    exactly; the default is the tight version (still an upper bound).
    """
    boundary = result.boundary_e
    if boundary.size == 0:
        return NO_THREAT
    m = scoring.match
    slack = 1 if paper_formula else 0
    best = NO_THREAT
    qlen = result.qlen
    for j in range(1, boundary.size):
        if boundary[j] <= 0:
            continue
        bound = int(boundary[j]) + (qlen - j + slack) * m
        if bound > best:
            best = bound
    return best


def escore_check_passes(
    result: ExtensionResult,
    score_nb: int,
    scoring: AffineGap,
    paper_formula: bool = False,
) -> bool:
    """True when no top-entering path can reach ``score_nb``."""
    return score_max_e(result, scoring, paper_formula) < score_nb
