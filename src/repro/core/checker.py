"""The SeedEx check workflow (paper Figure 6).

Given the result of a narrow-band extension, decide whether its score
is provably optimal (equal to what a full-band run would produce) or
whether the extension must be rerun with the full band:

1. ``score_nb <= S1``            -> rerun (case a: hopelessly small);
2. ``score_nb > S2``             -> accept (case b: provably optimal);
3. otherwise (case c)            -> run the E-score check, then the
   edit-distance check; accept only if both bounds fall strictly below
   ``score_nb``, else rerun.

``score_nb`` is the narrow-band *semi-global* score (``gscore``): the
paper's optimality guarantee targets global and semi-global alignment
(footnote 1).  Because every bound used here caps the *final* score of
any band-leaving path wherever it ends, an accepted extension has
bit-identical ``(lscore, lpos, gscore, gpos)`` to the full-band run —
the local score comes along for free (``lscore >= gscore`` and all
outside paths are strictly below ``gscore``).  That end-to-end theorem
is property-tested in ``tests/core/test_theorem.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.align.banded import ExtensionResult
from repro.align.scoring import AffineGap
from repro.core.editcheck import above_check, edit_check
from repro.core.escore import NO_THREAT, score_max_e
from repro.core.thresholds import Thresholds
from repro.obs import names


class CheckOutcome(enum.Enum):
    """Terminal states of the Figure 6 workflow."""

    PASS_S2 = "pass_s2"
    """Accepted by thresholding alone (case b)."""

    PASS_CHECKS = "pass_checks"
    """Accepted after the E-score and edit-distance checks (case c)."""

    FAIL_S1 = "fail_s1"
    """Score at or below S1: rerun (case a)."""

    FAIL_DEAD = "fail_dead"
    """No in-band path consumed the whole query: rerun."""

    FAIL_ESCORE = "fail_escore"
    """A top-entering path might beat the narrow band: rerun."""

    FAIL_EDIT = "fail_edit"
    """A left-entering path might beat the narrow band: rerun."""

    FAIL_ABOVE = "fail_above"
    """(local target) An upward-departing path might win: rerun."""

    @property
    def passed(self) -> bool:
        """True for the two accepting outcomes."""
        return self in (CheckOutcome.PASS_S2, CheckOutcome.PASS_CHECKS)


@dataclass(frozen=True)
class CheckConfig:
    """Which checks run and in which flavour.

    Disabling ``use_escore``/``use_edit_check`` turns the corresponding
    check into an automatic failure (rerun) — soundness is never
    sacrificed, only the passing rate, which is exactly the ablation
    Figure 14 plots.

    ``target`` picks which score the acceptance certifies.  The
    default ``"semiglobal"`` compares every bound against ``gscore``,
    which (because ``gscore <= lscore``) certifies *both* scores at
    once — the paper's guarantee.  ``"local"`` compares against
    ``lscore`` instead: it certifies only ``(lscore, lpos)`` but keeps
    working when no in-band path consumes the whole query (soft-clip
    workloads, where the semi-global target would always rerun).
    """

    use_escore: bool = True
    use_edit_check: bool = True
    exact_left_seed: bool = True
    paper_escore_formula: bool = False
    target: str = "semiglobal"

    def __post_init__(self) -> None:
        if self.target not in ("semiglobal", "local"):
            raise ValueError(f"unknown check target {self.target!r}")


@dataclass(frozen=True)
class CheckDecision:
    """Everything the checker computed, for accounting and debugging."""

    outcome: CheckOutcome
    score_nb: int
    thresholds: Thresholds
    score_max_e: int | None = None
    score_ed: int | None = None

    @property
    def passed(self) -> bool:
        """True when the extension was accepted."""
        return self.outcome.passed

    @property
    def needs_rerun(self) -> bool:
        """True when the extension must rerun full-band."""
        return not self.outcome.passed


class OptimalityChecker:
    """Applies the Figure 6 workflow to narrow-band extension results.

    ``kernel`` picks the DP backend for the threshold math and the
    edit check's left-entry sweep (``None`` = environment default);
    backends are bit-identical, so the verdicts never depend on it.
    """

    def __init__(
        self,
        scoring: AffineGap,
        config: CheckConfig | None = None,
        kernel=None,
    ) -> None:
        from repro.kernels import get_kernel

        self.scoring = scoring
        self.config = config or CheckConfig()
        self.kernel = get_kernel(kernel)

    def thresholds_for(self, result: ExtensionResult) -> Thresholds:
        """S1/S2 thresholds for one extension result."""
        return self.kernel.thresholds(
            self.scoring,
            result.qlen,
            result.tlen,
            result.band,
            result.h0,
        )

    def check(
        self,
        query: np.ndarray,
        target: np.ndarray,
        result: ExtensionResult,
    ) -> CheckDecision:
        """Decide optimality of ``result`` for the given input pair."""
        with obs.span(names.SPAN_CHECK_THRESHOLD):
            thresholds = self.thresholds_for(result)
            if self.config.target == "local":
                score_nb = result.lscore
            else:
                score_nb = result.gscore
                if result.gpos < 0:
                    return CheckDecision(
                        CheckOutcome.FAIL_DEAD, score_nb, thresholds
                    )
            verdict = thresholds.classify(score_nb)
        if verdict == "fail" and self.config.target != "local":
            # Case a.  The local target has no hopeless threshold: its
            # above-band sweep replaces S1 with real content.
            return CheckDecision(CheckOutcome.FAIL_S1, score_nb, thresholds)
        if verdict == "pass":
            return CheckDecision(CheckOutcome.PASS_S2, score_nb, thresholds)

        local = self.config.target == "local"
        if not self.config.use_escore:
            return CheckDecision(CheckOutcome.FAIL_ESCORE, score_nb, thresholds)
        with obs.span(names.SPAN_CHECK_ESCORE):
            e_bound = score_max_e(
                result, self.scoring, self.config.paper_escore_formula
            )
        e_pass = e_bound < score_nb
        if not e_pass and not local:
            return CheckDecision(
                CheckOutcome.FAIL_ESCORE, score_nb, thresholds, e_bound
            )

        if not self.config.use_edit_check:
            return CheckDecision(
                CheckOutcome.FAIL_EDIT, score_nb, thresholds, e_bound
            )
        # In local mode a failed all-match E-check is not terminal:
        # the sweep re-evaluates the downward crossings with real
        # content by seeding the region's top boundary.
        with obs.span(names.SPAN_CHECK_EDIT):
            ed = edit_check(
                query,
                target,
                result,
                self.scoring,
                thresholds.s1,
                exact_left_seed=self.config.exact_left_seed,
                include_top_seeds=local and not e_pass,
                left_entry_impl=self.kernel.left_entry,
            )
        if ed.score_ed >= score_nb:
            return CheckDecision(
                CheckOutcome.FAIL_EDIT,
                score_nb,
                thresholds,
                e_bound,
                ed.score_ed,
            )

        if self.config.target == "local":
            # The above-band region: the semi-global workflow has it
            # covered by score_nb > S1; the local one sweeps it.
            with obs.span(names.SPAN_CHECK_ABOVE):
                ab = above_check(query, target, result, self.scoring)
            if ab.score_ed >= score_nb:
                return CheckDecision(
                    CheckOutcome.FAIL_ABOVE,
                    score_nb,
                    thresholds,
                    e_bound,
                    ed.score_ed,
                )
        return CheckDecision(
            CheckOutcome.PASS_CHECKS,
            score_nb,
            thresholds,
            e_bound,
            ed.score_ed,
        )


__all__ = [
    "CheckOutcome",
    "CheckConfig",
    "CheckDecision",
    "OptimalityChecker",
    "NO_THREAT",
]
