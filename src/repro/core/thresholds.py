"""Threshold scores S1/S2 (paper Section III-A, Theorem 1).

The thresholds are analytic upper bounds on the final score of any
alignment path that ever leaves the band:

* ``S1`` bounds paths that cross the band's *upper* edge (more query
  than reference consumed — a net insertion run longer than ``w``):
  such a path pays at least one gap open plus ``w`` extensions and can
  match at most ``N - w`` of the remaining query characters.
* ``S2`` bounds paths that cross the band's *lower* edge (a net
  deletion run longer than ``w``): deletions consume no query, so all
  ``N`` query characters may still match, which is why ``S2 >= S1`` is
  the stricter-to-beat threshold.

Both are *admissible*: every step that raises the score is a diagonal
match (+m) consuming one query character, so score gains are bounded by
m times the unconsumed query, and the charged gap penalty is a lower
bound on what the crossing actually costs.  Global alignment doubles
the gap charge because a global path that leaves the band must also
come back (the paper's "replace go with 2go and ge with 2ge").

When a side of the band has no outside region (the band covers it),
that threshold is ``None`` — no constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.scoring import AffineGap


@dataclass(frozen=True)
class Thresholds:
    """The pair (S1, S2); ``None`` means the region does not exist."""

    s1: int | None
    s2: int | None

    def classify(self, score_nb: int) -> str:
        """Paper Figure 6's three-way split on the narrow-band score.

        Returns ``"fail"`` (case a: rerun), ``"pass"`` (case b: optimal),
        or ``"between"`` (case c: further checks needed).
        """
        if self.s1 is not None and score_nb <= self.s1:
            return "fail"
        if self.s2 is None or score_nb > self.s2:
            return "pass"
        return "between"


def semiglobal_thresholds(
    scoring: AffineGap,
    qlen: int,
    tlen: int,
    band: int,
    h0: int,
) -> Thresholds:
    """S1/S2 for semi-global extension (paper Eq. 4-5).

    ``S1 = h0 - (go + w*ge) + (N - w)*m`` and
    ``S2 = h0 - (go + w*ge) + N*m`` with the insertion/deletion gap
    extension applied to the side it crosses.
    """
    m = scoring.match
    go = scoring.gap_open
    s1 = None
    if qlen > band:
        s1 = h0 - (go + band * scoring.gap_extend_ins) + (qlen - band) * m
    s2 = None
    if tlen > band:
        s2 = h0 - (go + band * scoring.gap_extend_del) + qlen * m
    return Thresholds(s1=s1, s2=s2)


def global_thresholds(
    scoring: AffineGap,
    qlen: int,
    tlen: int,
    band: int,
    h0: int = 0,
) -> Thresholds:
    """S1/S2 for global alignment.

    A global path must end at ``(tlen, qlen)``, which is inside the
    band only when ``|tlen - qlen| <= band``; the configuration is
    rejected otherwise.  A band departure must be paid back with an
    opposite gap before reaching the corner.

    The paper's prose suggests "replace go with 2go and ge with 2ge";
    that formula is *not* admissible when the endpoint diagonal
    ``d0 = tlen - qlen`` sits near the band edge (the return gap can be
    as short as one character, much cheaper than ``go + w*ge``).  We
    therefore charge exactly what every departing path must pay:

    * below the band: deletions ``>= w+1`` plus a return insertion run
      of ``>= w+1-d0`` characters (each return insertion also forfeits
      one potential match);
    * above the band: insertions ``>= w+1`` (each forfeiting a match)
      plus a return deletion run of ``>= w+1+d0`` characters.
    """
    d0 = tlen - qlen
    if abs(d0) > band:
        raise ValueError(
            "global alignment endpoint lies outside the band; "
            "increase the band"
        )
    m = scoring.match
    go = scoring.gap_open
    ge_i = scoring.gap_extend_ins
    ge_d = scoring.gap_extend_del
    w = band
    s1 = None
    if qlen > band:
        ins = w + 1
        ret_del = w + 1 + d0
        s1 = (
            h0
            + (qlen - ins) * m
            - (go + ins * ge_i)
            - (go + ret_del * ge_d)
        )
    s2 = None
    if tlen > band:
        dels = w + 1
        ret_ins = w + 1 - d0
        s2 = (
            h0
            + (qlen - ret_ins) * m
            - (go + dels * ge_d)
            - (go + ret_ins * ge_i)
        )
    return Thresholds(s1=s1, s2=s2)
