"""Extension-result cache: duplicate jobs are computed once.

Reads piling onto the same locus produce byte-identical extension
jobs — same query fragment, same reference window, same seed score.
The kernels are pure functions of ``(query, target, h0, band)``, so a
result computed once can be replayed for every duplicate without any
risk to the bit-identity contract (property-tested in
``tests/aligner/test_batched_engine.py``).

The cache is a bounded LRU keyed on the raw bytes of both sequences
plus the scalar job parameters.  :class:`~repro.align.banded.ExtensionResult`
is a frozen dataclass whose array fields are never mutated by
consumers, so sharing one instance across hits is safe.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.align.banded import ExtensionResult

DEFAULT_MAX_ENTRIES = 65_536
"""Default cache capacity; one entry holds a few hundred bytes."""

CacheKey = tuple[bytes, bytes, int, "int | None"]
"""The identity of one extension job: query/target bytes, h0, band."""


def job_key(
    query: np.ndarray, target: np.ndarray, h0: int, band: int | None
) -> CacheKey:
    """The cache key for one ``(query, target, h0, band)`` job."""
    return (
        np.asarray(query).tobytes(),
        np.asarray(target).tobytes(),
        int(h0),
        band,
    )


class ExtensionCache:
    """A bounded LRU of :class:`ExtensionResult` keyed by job identity."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[CacheKey, ExtensionResult] = OrderedDict()

    def __len__(self) -> int:
        """Number of cached results."""
        return len(self._store)

    def get(self, key: CacheKey) -> ExtensionResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: CacheKey, result: ExtensionResult) -> None:
        """Cache ``result`` under ``key``, evicting the oldest entry
        when full."""
        self._store[key] = result
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and zero the hit/miss accounting."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
