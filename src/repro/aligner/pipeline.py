"""The end-to-end read aligner: seed, chain, extend, report.

A self-contained BWA-MEM-style pipeline (paper Section V-B):

1. **Seed** both orientations of the read (SMEM via the FM-index, or
   the k-mer/ERT stand-in);
2. **Chain** co-linear seeds and keep the strongest chains;
3. **Extend** each chain's anchor seed left and then right with the
   configured extension engine — the right extension's initial score
   is the left extension's result, exactly as BWA-MEM threads ``h0``;
4. pick the best-scoring candidate, run **traceback on the host** for
   the winner only (Section II-A), and emit a SAM record.

The extension engine is pluggable (:mod:`repro.aligner.engines`); the
whole pipeline is deterministic for a fixed input, so SAM outputs from
different engines are directly comparable — the Figure 13 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.align.cigar import Cigar
from repro.align.fullmatrix import fill_extension, traceback_path
from repro.align.scoring import AffineGap
from repro.aligner.engines import ExtensionEngine, FullBandEngine
from repro.faults.errors import DeadLetterError
from repro.genome.sam import FLAG_REVERSE, SamRecord
from repro.genome.sequence import decode, reverse_complement
from repro.index.store import IndexHandle, LoadedIndex
from repro.obs import names
from repro.seeding.chaining import Chain, chain_seeds, filter_chains
from repro.seeding.fmindex import FMIndex
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.mems import seed_read

END_BONUS = 4
"""Preference for to-end over clipped extensions (BWA-MEM's -L)."""

DEGRADED = "degraded"
"""Sentinel: a chain whose extension exhausted the resilience ladder."""

DEGRADED_TAG = "XF:Z:degraded_extension"
"""SAM tag on reads left unmapped by the degradation ladder."""


@dataclass
class AlignmentCandidate:
    """One fully-extended chain, before the best-of selection."""

    score: int
    pos: int
    reverse: bool
    chain: Chain
    # Geometry of the winning extension for host-side traceback.
    left_query: np.ndarray
    left_target: np.ndarray
    left_h0: int
    left_end: tuple[int, int]
    right_query: np.ndarray
    right_target: np.ndarray
    right_h0: int
    right_end: tuple[int, int]
    seed_len: int
    clip_left: int
    clip_right: int


class Aligner:
    """Align reads to one reference with a pluggable extension engine."""

    def __init__(
        self,
        reference: np.ndarray,
        engine: ExtensionEngine | None = None,
        seeding: str = "smem",
        reference_name: str = "chr1",
        min_seed_length: int = 19,
        band_margin: int = 45,
        max_chains: int = 3,
        index: LoadedIndex | IndexHandle | None = None,
    ) -> None:
        # Shard workers receive the picklable capability, not the
        # loaded artifact; resolving it here keeps one code path for
        # in-process, forked, and spawned aligners — and surfaces a
        # vanished/swapped artifact as the typed error, in the worker.
        if isinstance(index, IndexHandle):
            index = index.open()
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.reference_name = reference_name
        self.engine = engine or FullBandEngine()
        self.scoring: AffineGap = self.engine.scoring
        self.min_seed_length = min_seed_length
        self.band_margin = band_margin
        self.max_chains = max_chains
        # A persistent index artifact, when provided, replaces the
        # in-process build of the seeding structures — but only after
        # it proves it describes *this* reference (and this k, for
        # k-mer seeding).  IndexDriftError here, never wrong seeds.
        self.index_meta: dict | None = None
        if index is not None:
            index.check_reference(self.reference)
        if seeding == "smem":
            if index is not None:
                self._fm = index.fm_index()
            else:
                self._fm = FMIndex(self.reference)
            self._kmer = None
        elif seeding == "kmer":
            self._fm = None
            if index is not None:
                index.check_kmer_size(min_seed_length)
                self._kmer = index.kmer_index()
            else:
                self._kmer = KmerIndex(self.reference, k=min_seed_length)
        else:
            raise ValueError(f"unknown seeding backend {seeding!r}")
        if index is not None:
            self.index_meta = index.meta()
        self.seeding = seeding

    # -- seeding ----------------------------------------------------------

    def _seeds(self, query: np.ndarray):
        if self._fm is not None:
            return seed_read(self._fm, query, self.min_seed_length)
        return self._kmer.seed_read(query)

    # -- extension --------------------------------------------------------

    def _left_job(
        self, query: np.ndarray, chain: Chain
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """The chain's left extension job: ``(lq, lt, h0)``.

        Left extensions run on reversed prefixes so the kernel extends
        rightward in its own coordinates.  Shared by the scalar path
        and the wave scheduler so job geometry cannot drift.
        """
        seed = chain.anchor
        h0 = seed.length * self.scoring.match
        lq = query[: seed.qbegin][::-1].copy()
        lt_lo = max(0, seed.rbegin - len(lq) - self.band_margin)
        lt = self.reference[lt_lo : seed.rbegin][::-1].copy()
        return lq, lt, h0

    def _right_job(
        self, query: np.ndarray, chain: Chain
    ) -> tuple[np.ndarray, np.ndarray]:
        """The chain's right extension job geometry: ``(rq, rt)``.

        The right job's ``h0`` is the left extension's result (BWA-MEM
        threads the score), so it is supplied at dispatch time.
        """
        seed = chain.anchor
        rq = query[seed.qend :].copy()
        seed_rend = seed.rbegin + seed.length
        rt_hi = min(
            len(self.reference), seed_rend + len(rq) + self.band_margin
        )
        rt = self.reference[seed_rend:rt_hi].copy()
        return rq, rt

    def _make_candidate(
        self,
        chain: Chain,
        reverse: bool,
        lq: np.ndarray,
        lt: np.ndarray,
        h0: int,
        l_end: tuple[int, int],
        l_score: int,
        clip_left: int,
        rq: np.ndarray,
        rt: np.ndarray,
        r_end: tuple[int, int],
        final: int,
        clip_right: int,
    ) -> AlignmentCandidate:
        """Assemble the candidate from resolved left/right extensions."""
        seed = chain.anchor
        return AlignmentCandidate(
            score=final,
            pos=seed.rbegin - l_end[0],
            reverse=reverse,
            chain=chain,
            left_query=lq,
            left_target=lt,
            left_h0=h0,
            left_end=l_end,
            right_query=rq,
            right_target=rt,
            right_h0=l_score,
            right_end=r_end,
            seed_len=seed.length,
            clip_left=clip_left,
            clip_right=clip_right,
        )

    def _extend_chain(
        self, query: np.ndarray, chain: Chain, reverse: bool
    ) -> "AlignmentCandidate | str | None":
        """Extend one chain; ``DEGRADED`` when the engine dead-letters."""
        lq, lt, h0 = self._left_job(query, chain)
        if len(lq):
            try:
                lres = self.engine.extend(lq, lt, h0)
            except DeadLetterError:
                return DEGRADED
            l_end, l_score, clip_left = _resolve_end(lres, h0)
            if l_end == (0, 0) and l_score <= 0:
                return None
        else:
            l_end, l_score, clip_left = (0, 0), h0, 0

        # Right extension continues with the accumulated score.
        rq, rt = self._right_job(query, chain)
        if len(rq):
            try:
                rres = self.engine.extend(rq, rt, l_score)
            except DeadLetterError:
                return DEGRADED
            r_end, final, clip_right = _resolve_end(rres, l_score)
        else:
            r_end, final, clip_right = (0, 0), l_score, 0

        return self._make_candidate(
            chain, reverse, lq, lt, h0, l_end, l_score, clip_left,
            rq, rt, r_end, final, clip_right,
        )

    # -- per-read alignment ------------------------------------------------

    def align_read(self, codes: np.ndarray, name: str) -> SamRecord:
        """Align one read; always returns a record (possibly unmapped)."""
        with obs.span(names.SPAN_ALIGNER_READ):
            return self._align_read(codes, name)

    def _align_read(self, codes: np.ndarray, name: str) -> SamRecord:
        codes = np.asarray(codes, dtype=np.uint8)
        candidates: list[AlignmentCandidate] = []
        n_seeds = 0
        n_chains = 0
        n_degraded = 0
        for reverse in (False, True):
            query = reverse_complement(codes) if reverse else codes
            with obs.span(names.SPAN_ALIGNER_SEED):
                seeds = self._seeds(query)
            with obs.span(names.SPAN_ALIGNER_CHAIN):
                chains = filter_chains(
                    chain_seeds(seeds), max_chains=self.max_chains
                )
            n_seeds += len(seeds)
            n_chains += len(chains)
            for chain in chains:
                with obs.span(names.SPAN_ALIGNER_EXTEND):
                    cand = self._extend_chain(query, chain, reverse)
                if cand is DEGRADED:
                    n_degraded += 1
                elif cand is not None:
                    candidates.append(cand)
        return self._finalize_read(
            codes, name, candidates, n_seeds, n_chains, n_degraded
        )

    def _finalize_read(
        self,
        codes: np.ndarray,
        name: str,
        candidates: "list[AlignmentCandidate]",
        n_seeds: int,
        n_chains: int,
        n_degraded: int,
    ) -> SamRecord:
        """Best-candidate selection, traceback, and the SAM record.

        Shared verbatim by the scalar path and the wave scheduler —
        given the same candidate list (same order: forward chains then
        reverse, in filter order) both produce the same record byte
        for byte.
        """
        picked = self._select_candidate(
            codes, name, candidates, n_seeds, n_chains, n_degraded
        )
        if isinstance(picked, SamRecord):
            return picked
        best, mapq = picked
        with obs.span(names.SPAN_ALIGNER_TRACEBACK):
            cigar = self._traceback(best)
        return self._record(codes, name, best, mapq, cigar)

    def _select_candidate(
        self,
        codes: np.ndarray,
        name: str,
        candidates: "list[AlignmentCandidate]",
        n_seeds: int,
        n_chains: int,
        n_degraded: int,
    ) -> "SamRecord | tuple[AlignmentCandidate, int]":
        """Pick the read's winner (or emit its unmapped record).

        Returns the finished :class:`SamRecord` for unmapped reads, or
        ``(best, mapq)`` for mapped ones — traceback is the caller's
        job, so the wave scheduler can batch the winners' matrix fills
        across a whole window.
        """
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(names.ALIGNER_READS_TOTAL, "reads aligned").inc()
            reg.counter(names.ALIGNER_SEEDS_TOTAL, "seeds found").inc(
                n_seeds
            )
            reg.counter(names.ALIGNER_CHAINS_KEPT, "chains kept").inc(
                n_chains
            )
            reg.counter(
                names.ALIGNER_CANDIDATES_TOTAL, "candidates scored"
            ).inc(len(candidates))
            reg.histogram(
                names.ALIGNER_SEEDS_PER_READ, "seeds per read"
            ).observe(n_seeds)
            reg.histogram(
                names.ALIGNER_CHAINS_PER_READ, "chains per read"
            ).observe(n_chains)
            if not candidates:
                reg.counter(
                    names.ALIGNER_READS_UNMAPPED, "unmapped reads"
                ).inc()
            if n_degraded and not candidates:
                reg.counter(
                    names.ALIGNER_READS_DEGRADED,
                    "reads unmapped by the degradation ladder",
                ).inc()

        if not candidates:
            # Never crash on a dead-lettered extension: the read goes
            # out unmapped with the reason in a tag.
            tags = (DEGRADED_TAG,) if n_degraded else ()
            return SamRecord.unmapped(name, decode(codes), tags=tags)

        candidates.sort(key=lambda c: (-c.score, c.reverse, c.pos))
        best = candidates[0]
        runner_up = candidates[1].score if len(candidates) > 1 else 0
        return best, _mapq(best.score, runner_up)

    def _record(
        self,
        codes: np.ndarray,
        name: str,
        best: AlignmentCandidate,
        mapq: int,
        cigar: Cigar,
    ) -> SamRecord:
        """The mapped SAM record for a selected, traced-back winner."""
        flag = FLAG_REVERSE if best.reverse else 0
        return SamRecord(
            qname=name,
            flag=flag,
            rname=self.reference_name,
            pos=best.pos,
            mapq=mapq,
            cigar=str(cigar),
            seq=decode(codes),
            tags=(f"AS:i:{best.score}",),
        )

    def align(self, reads) -> list[SamRecord]:
        """Align a batch of (name, codes) pairs or SimulatedReads."""
        out = []
        for read in reads:
            if hasattr(read, "codes"):
                out.append(self.align_read(read.codes, read.name))
            else:
                name, codes = read
                out.append(self.align_read(codes, name))
        return out

    def align_batched(
        self, reads, batch_size: int = 4096, progress=None
    ) -> list[SamRecord]:
        """Align reads through the deferred-extension wave scheduler.

        Seeds and chains a window of reads, then dispatches all left
        extensions as one lockstep wave and all right extensions as a
        second wave (:mod:`repro.aligner.waves`).  Output is
        byte-identical to :meth:`align`, record for record; the
        optional ``progress(window_index, done, total)`` callback
        observes window completions without affecting it.
        """
        from repro.aligner.waves import align_batched

        return align_batched(
            self, reads, batch_size=batch_size, progress=progress
        )

    # -- host-side traceback ------------------------------------------------

    def _traceback(
        self,
        cand: AlignmentCandidate,
        left_mats=None,
        right_mats=None,
    ) -> Cigar:
        """Build the final CIGAR: traceback runs on the host, once, for
        the winning extension only.

        ``left_mats``/``right_mats`` are optional pre-filled
        :class:`~repro.align.fullmatrix.DenseMatrices` — the wave
        scheduler fills a whole window's winners in lockstep and walks
        each one here; when absent the matrices are filled on demand
        (the scalar path).
        """
        ops: list[tuple[int, str]] = []
        if cand.clip_left:
            ops.append((cand.clip_left, "S"))
        if cand.left_end != (0, 0):
            if left_mats is None:
                left_mats = fill_extension(
                    cand.left_query,
                    cand.left_target,
                    self.scoring,
                    cand.left_h0,
                )
            left = traceback_path(
                left_mats,
                cand.left_query,
                cand.left_target,
                self.scoring,
                cand.left_end,
            )
            ops.extend(left.reversed().ops)
        ops.append((cand.seed_len, "M"))
        if cand.right_end != (0, 0):
            if right_mats is None:
                right_mats = fill_extension(
                    cand.right_query,
                    cand.right_target,
                    self.scoring,
                    cand.right_h0,
                )
            right = traceback_path(
                right_mats,
                cand.right_query,
                cand.right_target,
                self.scoring,
                cand.right_end,
            )
            ops.extend(right.ops)
        if cand.clip_right:
            ops.append((cand.clip_right, "S"))
        return Cigar.from_ops(ops)


def _resolve_end(result, h0: int) -> tuple[tuple[int, int], int, int]:
    """Choose between to-end and clipped extension (BWA's end bonus).

    Returns ``(endpoint, score, clipped_query_chars)``.  The to-end
    alignment wins when its score is within ``END_BONUS`` of the best
    local score; otherwise the extension clips at the local maximum.
    """
    if result.gpos >= 0 and result.gscore + END_BONUS >= result.lscore:
        return (result.gpos, result.qlen), result.gscore, 0
    i, j = result.lpos
    return (i, j), result.lscore, result.qlen - j


def _mapq(best: int, runner_up: int) -> int:
    """A simple, deterministic mapping quality."""
    if best <= 0:
        return 0
    gap = best - max(runner_up, 0)
    return max(0, min(60, int(60 * gap / best) if runner_up else 60))
