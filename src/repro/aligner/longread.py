"""Long-read alignment with the seed-chain-then-fill strategy.

Paper Section VII-D: long-read aligners (minimap2, BLASR) do not grow
one seed with an enormous band; they chain many seeds and *globally
align the gaps between adjacent seeds*, which keeps every DP small.
The paper observes this fill step takes 16-33% of minimap2's time and
that "SeedEx can be directly applied to this kernel, performing
optimal global alignment with a small area".

This module is that application: a minimap2-flavoured pipeline whose
fill kernel is :class:`repro.core.globalcheck.GlobalSeedEx` — every
inter-seed gap is aligned on a narrow band, proven optimal or rerun,
so the stitched alignment is bit-equivalent to full-band fills.  Read
ends are finished with the semi-global :class:`SeedExtender`, so both
of the paper's guaranteed modes are exercised in one pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.cigar import Cigar
from repro.align.fullmatrix import traceback_extension, traceback_global
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.aligner.pipeline import _resolve_end
from repro.core.extender import SeedExtender
from repro.core.globalcheck import GlobalSeedEx
from repro.seeding.chaining import chain_seeds, filter_chains
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.mems import Seed


@dataclass
class FillRecord:
    """One inter-seed gap fill and its check outcome."""

    query_gap: int
    target_gap: int
    band_used: int
    score: int
    proved_optimal: bool
    rerun: bool


@dataclass
class LongReadAlignment:
    """A stitched long-read alignment."""

    name: str
    pos: int
    score: int
    cigar: Cigar
    seeds_used: int
    fills: list[FillRecord] = field(default_factory=list)

    @property
    def fill_pass_rate(self) -> float:
        """Fraction of this read's fills proved optimal."""
        if not self.fills:
            return 1.0
        return sum(f.proved_optimal for f in self.fills) / len(self.fills)


@dataclass
class LongReadStats:
    reads: int = 0
    unaligned: int = 0
    fills: int = 0
    fills_proved: int = 0
    fill_cells_narrow: int = 0

    @property
    def fill_pass_rate(self) -> float:
        """Fraction of all fills proved optimal on the narrow band."""
        return self.fills_proved / self.fills if self.fills else 0.0


class LongReadAligner:
    """Seed-chain-fill alignment with guaranteed-optimal fills."""

    def __init__(
        self,
        reference: np.ndarray,
        fill_band: int = 16,
        end_band: int = 41,
        k: int = 15,
        scoring: AffineGap = BWA_MEM_SCORING,
        max_fill_gap: int = 400,
    ) -> None:
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.scoring = scoring
        self.fill_band = fill_band
        self.max_fill_gap = max_fill_gap
        self.index = KmerIndex(self.reference, k=k)
        self.filler = GlobalSeedEx(band=fill_band, scoring=scoring)
        self.end_extender = SeedExtender(band=end_band, scoring=scoring)
        self.stats = LongReadStats()

    def align(self, codes: np.ndarray, name: str = "read") -> LongReadAlignment | None:
        """Align one long read; None when no usable chain exists."""
        self.stats.reads += 1
        codes = np.asarray(codes, dtype=np.uint8)
        seeds = self.index.seed_read(codes, stride=8, max_occurrences=8)
        chains = filter_chains(
            chain_seeds(seeds, max_gap=self.max_fill_gap,
                        max_diagonal_drift=self.max_fill_gap // 2),
            max_chains=1,
        )
        if not chains:
            self.stats.unaligned += 1
            return None
        chain = chains[0]
        backbone = _non_overlapping(sorted(
            chain.seeds, key=lambda s: (s.qbegin, s.rbegin)
        ))
        if not backbone:
            self.stats.unaligned += 1
            return None

        ref = self.reference
        m = self.scoring.match
        ops: list[tuple[int, str]] = []
        score = 0
        fills: list[FillRecord] = []

        # Left end: semi-global extension from the first seed.
        first = backbone[0]
        lq = codes[: first.qbegin][::-1].copy()
        lt_lo = max(0, first.rbegin - len(lq) - 64)
        lt = ref[lt_lo : first.rbegin][::-1].copy()
        h0 = first.length * m
        if len(lq):
            lres = self.end_extender.extend(lq, lt, h0).result
            l_end, l_score, clip_left = _resolve_end(lres, h0)
            if clip_left:
                ops.append((clip_left, "S"))
            if l_end != (0, 0):
                ops.extend(
                    traceback_extension(
                        lq, lt, self.scoring, h0, l_end
                    ).reversed().ops
                )
        else:
            l_end, l_score, clip_left = (0, 0), h0, 0
        pos = first.rbegin - l_end[0]
        score += l_score

        # Backbone: seeds stitched by guaranteed-optimal global fills.
        ops.append((first.length, "M"))
        prev = first
        for seed in backbone[1:]:
            qgap = codes[prev.qend : seed.qbegin]
            tgap = ref[prev.rbegin + prev.length : seed.rbegin]
            if len(qgap) == 0 and len(tgap) == 0:
                ops.append((seed.length, "M"))
                score += seed.length * m
                prev = seed
                continue
            out = self.filler.align(qgap, tgap)
            self.stats.fills += 1
            self.stats.fills_proved += out.decision.passed
            self.stats.fill_cells_narrow += out.narrow_result.cells_computed
            fills.append(
                FillRecord(
                    query_gap=len(qgap),
                    target_gap=len(tgap),
                    band_used=out.narrow_result.band,
                    score=out.result.score,
                    proved_optimal=out.decision.passed,
                    rerun=out.rerun,
                )
            )
            score += out.result.score
            if len(qgap) or len(tgap):
                ops.extend(
                    traceback_global(qgap, tgap, self.scoring).ops
                )
            ops.append((seed.length, "M"))
            score += seed.length * m
            prev = seed

        # Right end: semi-global extension beyond the last seed.
        rq = codes[prev.qend :].copy()
        rt_hi = min(len(ref), prev.rbegin + prev.length + len(rq) + 64)
        rt = ref[prev.rbegin + prev.length : rt_hi].copy()
        if len(rq):
            rres = self.end_extender.extend(rq, rt, max(1, score)).result
            r_end, r_score, clip_right = _resolve_end(
                rres, max(1, score)
            )
            if r_end != (0, 0):
                ops.extend(
                    traceback_extension(
                        rq, rt, self.scoring, max(1, score), r_end
                    ).ops
                )
            if clip_right:
                ops.append((clip_right, "S"))
            score = r_score

        return LongReadAlignment(
            name=name,
            pos=pos,
            score=score,
            cigar=Cigar.from_ops(ops),
            seeds_used=len(backbone),
            fills=fills,
        )


def _non_overlapping(seeds: list[Seed]) -> list[Seed]:
    """Greedy backbone: keep seeds that advance both coordinates."""
    backbone: list[Seed] = []
    for seed in seeds:
        if not backbone:
            backbone.append(seed)
            continue
        prev = backbone[-1]
        if (
            seed.qbegin >= prev.qend
            and seed.rbegin >= prev.rbegin + prev.length
        ):
            backbone.append(seed)
    return backbone
