"""Long-read alignment with the seed-chain-then-fill strategy.

Paper Section VII-D: long-read aligners (minimap2, BLASR) do not grow
one seed with an enormous band; they chain many seeds and *globally
align the gaps between adjacent seeds*, which keeps every DP small.
The paper observes this fill step takes 16-33% of minimap2's time and
that "SeedEx can be directly applied to this kernel, performing
optimal global alignment with a small area".

This module is that application: a minimap2-flavoured pipeline whose
fill kernel is :class:`repro.core.globalcheck.GlobalSeedEx` — every
inter-seed gap is aligned on a narrow band, proven optimal or rerun,
so the stitched alignment is bit-equivalent to full-band fills.  Read
ends are finished with the semi-global :class:`SeedExtender`, so both
of the paper's guaranteed modes are exercised in one pipeline.

Two execution paths share one plan/stitch skeleton:

* :meth:`LongReadAligner.align` — the scalar path: one read at a
  time, one ``GlobalSeedEx`` call per gap;
* :meth:`LongReadAligner.align_batch` — the batched path: windows of
  reads move through three dependency-ordered waves (left ends →
  gap fills → right ends).  End extensions ride the same
  ``extend_wave`` engines the short-read scheduler uses; gap fills
  are collected *across* reads into shape-bucketed lockstep sweeps
  with adaptive band escalation
  (:func:`repro.align.globalbatch.fill_gaps_guaranteed`).

Both paths end at guaranteed-optimal scores for every piece, so their
stitched alignments — and the SAM lines :func:`sam_record` renders —
are byte-identical (pinned by ``tests/kernels/test_differential_e2e.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.align.cigar import Cigar
from repro.align.fullmatrix import traceback_extension, traceback_global
from repro.align.globalbatch import fill_gaps_guaranteed
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.aligner.pipeline import DEGRADED, _resolve_end
from repro.aligner.waves import DEFAULT_BATCH_SIZE, _dispatch_wave
from repro.core.extender import SeedExtender
from repro.core.globalcheck import GlobalSeedEx
from repro.genome.sam import SamRecord
from repro.genome.sequence import decode
from repro.obs import names
from repro.seeding.chaining import chain_seeds, filter_chains
from repro.seeding.kmer_index import KmerIndex
from repro.seeding.mems import Seed


@dataclass
class FillRecord:
    """One inter-seed gap fill and its check outcome."""

    query_gap: int
    target_gap: int
    band_used: int
    score: int
    proved_optimal: bool
    rerun: bool


@dataclass
class LongReadAlignment:
    """A stitched long-read alignment."""

    name: str
    pos: int
    score: int
    cigar: Cigar
    seeds_used: int
    fills: list[FillRecord] = field(default_factory=list)

    @property
    def fill_pass_rate(self) -> float:
        """Fraction of this read's fills proved optimal."""
        if not self.fills:
            return 1.0
        return sum(f.proved_optimal for f in self.fills) / len(self.fills)


@dataclass
class LongReadStats:
    reads: int = 0
    unaligned: int = 0
    fills: int = 0
    fills_proved: int = 0
    fill_cells_narrow: int = 0

    @property
    def fill_pass_rate(self) -> float:
        """Fraction of all fills proved optimal on the narrow band."""
        return self.fills_proved / self.fills if self.fills else 0.0


@dataclass
class _FillOutcome:
    """A guaranteed-optimal gap fill, path-agnostic."""

    score: int
    band_used: int
    proved: bool
    rerun: bool
    cells: int


@dataclass
class _ReadPlan:
    """Everything about a read that is known before any DP runs.

    Both execution paths derive jobs from the same plan, which is what
    makes their outputs byte-identical: the job *geometry* is decided
    once, only the schedule differs.
    """

    name: str
    codes: np.ndarray
    backbone: list[Seed]
    lq: np.ndarray
    lt: np.ndarray
    h0: int
    rq: np.ndarray
    rt: np.ndarray
    gaps: list[tuple[np.ndarray, np.ndarray]]
    gap_slots: list[int | None]


class LongReadAligner:
    """Seed-chain-fill alignment with guaranteed-optimal fills."""

    def __init__(
        self,
        reference: np.ndarray,
        fill_band: int = 16,
        end_band: int = 41,
        k: int = 15,
        scoring: AffineGap = BWA_MEM_SCORING,
        max_fill_gap: int = 400,
        reference_name: str = "chr1",
    ) -> None:
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.scoring = scoring
        self.fill_band = fill_band
        self.max_fill_gap = max_fill_gap
        self.reference_name = reference_name
        self.index = KmerIndex(self.reference, k=k)
        self.filler = GlobalSeedEx(band=fill_band, scoring=scoring)
        self.end_extender = SeedExtender(band=end_band, scoring=scoring)
        self.stats = LongReadStats()

    # -- planning -------------------------------------------------------

    def _plan(self, codes: np.ndarray, name: str) -> _ReadPlan | None:
        """Seed, chain and lay out one read's jobs; None when hopeless."""
        self.stats.reads += 1
        codes = np.asarray(codes, dtype=np.uint8)
        seeds = self.index.seed_read(codes, stride=8, max_occurrences=8)
        chains = filter_chains(
            chain_seeds(seeds, max_gap=self.max_fill_gap,
                        max_diagonal_drift=self.max_fill_gap // 2),
            max_chains=1,
        )
        if not chains:
            self.stats.unaligned += 1
            return None
        chain = chains[0]
        backbone = _non_overlapping(sorted(
            chain.seeds, key=lambda s: (s.qbegin, s.rbegin)
        ))
        if not backbone:
            self.stats.unaligned += 1
            return None

        ref = self.reference
        first = backbone[0]
        lq = codes[: first.qbegin][::-1].copy()
        lt_lo = max(0, first.rbegin - len(lq) - 64)
        lt = ref[lt_lo : first.rbegin][::-1].copy()
        h0 = first.length * self.scoring.match

        gaps: list[tuple[np.ndarray, np.ndarray]] = []
        gap_slots: list[int | None] = []
        prev = first
        for seed in backbone[1:]:
            qgap = codes[prev.qend : seed.qbegin]
            tgap = ref[prev.rbegin + prev.length : seed.rbegin]
            if len(qgap) == 0 and len(tgap) == 0:
                gap_slots.append(None)
            else:
                gap_slots.append(len(gaps))
                gaps.append((qgap, tgap))
            prev = seed

        rq = codes[prev.qend :].copy()
        rt_hi = min(len(ref), prev.rbegin + prev.length + len(rq) + 64)
        rt = ref[prev.rbegin + prev.length : rt_hi].copy()
        return _ReadPlan(
            name=name, codes=codes, backbone=backbone,
            lq=lq, lt=lt, h0=h0, rq=rq, rt=rt,
            gaps=gaps, gap_slots=gap_slots,
        )

    # -- the two fill schedules ----------------------------------------

    def _fill_scalar(
        self, qgap: np.ndarray, tgap: np.ndarray
    ) -> _FillOutcome:
        """One gap through the scalar checked filler."""
        out = self.filler.align(qgap, tgap)
        self.stats.fills += 1
        self.stats.fills_proved += out.decision.passed
        self.stats.fill_cells_narrow += out.narrow_result.cells_computed
        return _FillOutcome(
            score=out.result.score,
            band_used=out.narrow_result.band,
            proved=out.decision.passed,
            rerun=out.rerun,
        cells=out.narrow_result.cells_computed,
        )

    def _fill_wave(
        self, gaps: list[tuple[np.ndarray, np.ndarray]]
    ) -> list[_FillOutcome]:
        """A whole wave of gaps through the lockstep escalation ladder."""
        if not gaps:
            return []
        with obs.span(
            names.SPAN_PIPELINE_LONGREAD_FILL_WAVE, jobs=len(gaps)
        ):
            outs = fill_gaps_guaranteed(
                [q for q, _ in gaps],
                [t for _, t in gaps],
                self.scoring,
                band=self.fill_band,
            )
        escalated = sum(1 for o in outs if o.escalations)
        self.stats.fills += len(outs)
        self.stats.fills_proved += len(outs) - escalated
        self.stats.fill_cells_narrow += sum(
            o.result.cells_computed for o in outs
        )
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(
                names.PIPELINE_LONGREAD_FILL_JOBS, "batched gap fills"
            ).inc(len(outs))
            if escalated:
                reg.counter(
                    names.PIPELINE_LONGREAD_FILL_ESCALATIONS,
                    "gap fills that climbed the band ladder",
                ).inc(escalated)
        return [
            _FillOutcome(
                score=o.result.score,
                band_used=o.result.band,
                proved=o.escalations == 0,
                rerun=o.rerun,
                cells=o.result.cells_computed,
            )
            for o in outs
        ]

    # -- stitching ------------------------------------------------------

    def _stitch_middle(
        self,
        plan: _ReadPlan,
        l_resolved: tuple[tuple[int, int], int, int],
        fill_outs: list[_FillOutcome],
    ):
        """Left end + backbone into ops; returns (ops, score, pos, fills)."""
        l_end, l_score, clip_left = l_resolved
        ops: list[tuple[int, str]] = []
        if clip_left:
            ops.append((clip_left, "S"))
        if len(plan.lq) and l_end != (0, 0):
            ops.extend(
                traceback_extension(
                    plan.lq, plan.lt, self.scoring, plan.h0, l_end
                ).reversed().ops
            )
        first = plan.backbone[0]
        pos = first.rbegin - l_end[0]
        score = l_score
        m = self.scoring.match

        ops.append((first.length, "M"))
        fills: list[FillRecord] = []
        for seed, slot in zip(plan.backbone[1:], plan.gap_slots):
            if slot is not None:
                qgap, tgap = plan.gaps[slot]
                fo = fill_outs[slot]
                fills.append(
                    FillRecord(
                        query_gap=len(qgap),
                        target_gap=len(tgap),
                        band_used=fo.band_used,
                        score=fo.score,
                        proved_optimal=fo.proved,
                        rerun=fo.rerun,
                    )
                )
                score += fo.score
                if len(qgap) or len(tgap):
                    ops.extend(
                        traceback_global(qgap, tgap, self.scoring).ops
                    )
            ops.append((seed.length, "M"))
            score += seed.length * m
        return ops, score, pos, fills

    def _finish(
        self,
        plan: _ReadPlan,
        ops: list[tuple[int, str]],
        score: int,
        pos: int,
        fills: list[FillRecord],
        r_resolved: tuple[tuple[int, int], int, int] | None,
        r_h0: int,
    ) -> LongReadAlignment:
        """Apply the right-end resolution and build the alignment."""
        if r_resolved is not None:
            r_end, r_score, clip_right = r_resolved
            if r_end != (0, 0):
                ops.extend(
                    traceback_extension(
                        plan.rq, plan.rt, self.scoring, r_h0, r_end
                    ).ops
                )
            if clip_right:
                ops.append((clip_right, "S"))
            score = r_score
        return LongReadAlignment(
            name=plan.name,
            pos=pos,
            score=score,
            cigar=Cigar.from_ops(ops),
            seeds_used=len(plan.backbone),
            fills=fills,
        )

    # -- the scalar path ------------------------------------------------

    def align(self, codes: np.ndarray, name: str = "read") -> LongReadAlignment | None:
        """Align one long read; None when no usable chain exists."""
        plan = self._plan(codes, name)
        if plan is None:
            return None
        if len(plan.lq):
            lres = self.end_extender.extend(plan.lq, plan.lt, plan.h0).result
            l_resolved = _resolve_end(lres, plan.h0)
        else:
            l_resolved = ((0, 0), plan.h0, 0)
        fill_outs = [self._fill_scalar(q, t) for q, t in plan.gaps]
        ops, score, pos, fills = self._stitch_middle(
            plan, l_resolved, fill_outs
        )
        r_resolved = None
        r_h0 = max(1, score)
        if len(plan.rq):
            rres = self.end_extender.extend(plan.rq, plan.rt, r_h0).result
            r_resolved = _resolve_end(rres, r_h0)
        return self._finish(
            plan, ops, score, pos, fills, r_resolved, r_h0
        )

    # -- the batched path -----------------------------------------------

    def align_batch(
        self,
        reads,
        engine=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> list[LongReadAlignment | None]:
        """Align many reads through three dependency-ordered waves.

        ``reads`` may be ``(name, codes)`` pairs or ``SimulatedRead``-like
        objects; results come back in input order, byte-identical to
        per-read :meth:`align`.  ``engine`` handles the end-extension
        waves (anything with ``extend`` works; ``extend_wave`` engines
        get whole waves) and defaults to the scalar ``SeedExtender`` —
        pass a :class:`~repro.aligner.engines.BatchedEngine` for the
        lockstep fast path.  A dead-lettered end job falls back to the
        scalar extender alone, never its whole wave.
        """
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        normalized = [
            (read.name, read.codes) if hasattr(read, "codes") else read
            for read in reads
        ]
        out: list[LongReadAlignment | None] = []
        for start in range(0, len(normalized), batch_size):
            out.extend(
                self._align_window(
                    normalized[start : start + batch_size], engine
                )
            )
        return out

    def _align_window(self, window, engine) -> list[LongReadAlignment | None]:
        """One window: left wave → fill wave → right wave → stitch."""
        with obs.span(
            names.SPAN_PIPELINE_LONGREAD_WINDOW, reads=len(window)
        ):
            plans = [self._plan(codes, name) for name, codes in window]
            live = [p for p in plans if p is not None]
            if obs.enabled():
                obs.get_registry().counter(
                    names.PIPELINE_LONGREAD_READS, "long reads planned"
                ).inc(len(window))

            # Wave 1: left ends (h0 known up front).
            lefts = [p for p in live if len(p.lq)]
            l_resolved: dict[int, tuple] = {}
            if engine is not None:
                results = _dispatch_wave(
                    engine,
                    [(p.lq, p.lt, p.h0) for p in lefts],
                    "longread_left",
                )
            else:
                results = [
                    self.end_extender.extend(p.lq, p.lt, p.h0).result
                    for p in lefts
                ]
            for p, res in zip(lefts, results):
                if res is DEGRADED:
                    res = self.end_extender.extend(p.lq, p.lt, p.h0).result
                l_resolved[id(p)] = _resolve_end(res, p.h0)
            for p in live:
                if not len(p.lq):
                    l_resolved[id(p)] = ((0, 0), p.h0, 0)

            # Wave 2: every gap of every read, one lockstep ladder.
            flat: list[tuple[np.ndarray, np.ndarray]] = []
            spans: list[tuple[int, int]] = []
            for p in live:
                spans.append((len(flat), len(flat) + len(p.gaps)))
                flat.extend(p.gaps)
            fill_outs = self._fill_wave(flat)

            # Stitch middles; wave 3: right ends (h0 = stitched score).
            middles: dict[int, tuple] = {}
            rights: list[tuple[_ReadPlan, int]] = []
            for p, (lo, hi) in zip(live, spans):
                ops, score, pos, fills = self._stitch_middle(
                    p, l_resolved[id(p)], fill_outs[lo:hi]
                )
                middles[id(p)] = (ops, score, pos, fills)
                if len(p.rq):
                    rights.append((p, max(1, score)))
            r_resolved: dict[int, tuple] = {}
            if engine is not None:
                results = _dispatch_wave(
                    engine,
                    [(p.rq, p.rt, h0) for p, h0 in rights],
                    "longread_right",
                )
            else:
                results = [
                    self.end_extender.extend(p.rq, p.rt, h0).result
                    for p, h0 in rights
                ]
            for (p, h0), res in zip(rights, results):
                if res is DEGRADED:
                    res = self.end_extender.extend(p.rq, p.rt, h0).result
                r_resolved[id(p)] = _resolve_end(res, h0)

            out: list[LongReadAlignment | None] = []
            for p in plans:
                if p is None:
                    out.append(None)
                    continue
                ops, score, pos, fills = middles[id(p)]
                out.append(
                    self._finish(
                        p, ops, score, pos, fills,
                        r_resolved.get(id(p)),
                        max(1, score),
                    )
                )
        return out


def _non_overlapping(seeds: list[Seed]) -> list[Seed]:
    """Greedy backbone: keep seeds that advance both coordinates."""
    backbone: list[Seed] = []
    for seed in seeds:
        if not backbone:
            backbone.append(seed)
            continue
        prev = backbone[-1]
        if (
            seed.qbegin >= prev.qend
            and seed.rbegin >= prev.rbegin + prev.length
        ):
            backbone.append(seed)
    return backbone


_SHARD_STATE = None
"""Worker-process (aligner, engine); pre-built by the parent on fork."""


def _build_long_state(reference, spec, options):
    """One worker's long-read state: aligner plus optional end engine."""
    aligner = LongReadAligner(reference, **options)
    engine = spec.build() if spec is not None else None
    return aligner, engine


def _init_long_worker(reference, spec, options, collect) -> None:
    """Pool initializer: adopt the forked state or build a fresh one."""
    global _SHARD_STATE
    if collect and not obs.enabled():
        obs.enable()
    if _SHARD_STATE is None:
        _SHARD_STATE = _build_long_state(reference, spec, options)


def _run_long_shard(task):
    """Align one long-read shard; returns records + a metrics snapshot."""
    index, reads, batch_size, mode, collect = task
    if collect:
        obs.reset()
    aligner, engine = _SHARD_STATE
    if mode == "batched":
        alns = aligner.align_batch(
            reads, engine=engine, batch_size=batch_size
        )
    else:
        alns = [aligner.align(codes, name) for name, codes in reads]
    records = [
        sam_record(
            name, codes, aln,
            reference_name=aligner.reference_name,
            match=aligner.scoring.match,
        )
        for (name, codes), aln in zip(reads, alns)
    ]
    snapshot = obs.get_registry().snapshot() if collect else None
    return index, records, snapshot


def align_long_sharded(
    reference: np.ndarray,
    reads,
    mode: str = "batched",
    spec=None,
    workers: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    start_method: str | None = None,
    **aligner_options,
) -> list[SamRecord]:
    """Align long reads across worker processes, input order kept.

    The long-read twin of :func:`repro.aligner.parallel.align_sharded`
    — same contiguous shard plan, same fork copy-on-write state
    sharing, same metric-snapshot absorption — but each worker drives
    a :class:`LongReadAligner`.  ``mode`` selects the per-shard
    schedule (``scalar`` loops :meth:`~LongReadAligner.align`;
    ``batched`` runs the three-wave :meth:`~LongReadAligner.align_batch`)
    and ``spec`` (an :class:`~repro.aligner.parallel.EngineSpec`) names
    the optional end-extension engine.  Both modes, at any worker
    count, emit byte-identical SAM.
    """
    from repro.aligner.parallel import (
        _normalize_reads,
        _note_shards,
        _resolve_context,
        _shard_plan,
        _validate_spawn_payload,
    )

    global _SHARD_STATE
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if mode not in ("scalar", "batched"):
        raise ValueError(f"unknown long-read mode {mode!r}")
    normalized = _normalize_reads(reads)
    workers = max(1, min(workers, max(1, len(normalized))))
    collect = obs.enabled()

    if workers == 1:
        aligner, engine = _build_long_state(
            reference, spec, aligner_options
        )
        if mode == "batched":
            alns = aligner.align_batch(
                normalized, engine=engine, batch_size=batch_size
            )
        else:
            alns = [
                aligner.align(codes, name) for name, codes in normalized
            ]
        _note_shards(collect, [len(normalized)], merged=0)
        return [
            sam_record(
                name, codes, aln,
                reference_name=aligner.reference_name,
                match=aligner.scoring.match,
            )
            for (name, codes), aln in zip(normalized, alns)
        ]

    plan = _shard_plan(len(normalized), workers)
    tasks = [
        (i, normalized[start:stop], batch_size, mode, collect)
        for i, (start, stop) in enumerate(plan)
    ]
    ctx, method = _resolve_context(start_method)
    forked = method == "fork"
    if not forked:
        _validate_spawn_payload(reference, spec, aligner_options)
    if forked:
        _SHARD_STATE = _build_long_state(reference, spec, aligner_options)
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_init_long_worker,
            initargs=(reference, spec, aligner_options, collect),
        ) as pool:
            results = pool.map(_run_long_shard, tasks)
    finally:
        _SHARD_STATE = None

    results.sort(key=lambda item: item[0])
    records = [rec for _, shard, _ in results for rec in shard]
    merged = 0
    if collect:
        registry = obs.get_registry()
        for _, _, snapshot in results:
            if snapshot is not None:
                registry.absorb_snapshot(snapshot)
                merged += 1
    _note_shards(collect, [stop - start for start, stop in plan], merged)
    return records


def sam_record(
    name: str,
    codes: np.ndarray,
    aln: LongReadAlignment | None,
    reference_name: str = "chr1",
    match: int = BWA_MEM_SCORING.match,
) -> SamRecord:
    """Render one long-read alignment (or its absence) as SAM.

    MAPQ scales the stitched score against a perfect full-length match
    — deterministic in the score alone, so the scalar and batched
    paths render identical lines.
    """
    if aln is None:
        return SamRecord.unmapped(name, decode(codes))
    denom = max(1, len(codes) * match)
    mapq = max(0, min(60, (aln.score * 60) // denom))
    return SamRecord(
        qname=name,
        flag=0,
        rname=reference_name,
        pos=aln.pos,
        mapq=mapq,
        cigar=str(aln.cigar),
        seq=decode(codes),
        tags=(f"AS:i:{aln.score}", f"XS:i:{aln.seeds_used}"),
    )
