"""Producer-consumer batching model (paper Section V-B, Figure 12).

BWA-MEM's seeding threads produce extension batches; FPGA threads
package them, DMA them over XDMA, take the FPGA lock, kick off the
batch, poll for ``batch_done``, and retrieve results.  Multiple FPGA
threads interleave so transfer and compute overlap across batches.

This is a small analytic steady-state model rather than a full
discrete-event simulation: it answers the questions the paper answers
— who is the bottleneck, how many threads must drive the FPGA to keep
it busy, and how much thread budget seeding needs (the paper lands at
88% of threads on seeding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as paper
from repro.hw import timing
from repro.system.fpga import BatchTransfer, F1Instance


@dataclass(frozen=True)
class MicroBatchPolicy:
    """How the resident server coalesces requests into waves.

    ``repro serve`` pops admitted requests from its bounded queue and
    feeds them to the wave scheduler in micro-batches: up to
    ``max_batch`` reads per wave, waiting at most ``linger_ms`` from
    the first available request for the batch to fill.  Small
    ``linger_ms`` favours latency; large favours wave occupancy (the
    same producer/consumer trade this module's steady-state model
    quantifies for the paper's FPGA driver threads).
    """

    max_batch: int = 64
    linger_ms: float = 20.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.linger_ms < 0:
            raise ValueError("linger_ms must be non-negative")

    @property
    def linger_s(self) -> float:
        """The linger window in seconds (the queue's native unit)."""
        return self.linger_ms / 1000.0


@dataclass(frozen=True)
class WaveOccupancy:
    """How densely one wave of extension jobs packs for the striped
    kernel (:mod:`repro.kernels.striped`).

    ``shape_classes`` counts the distinct geometric (target, query)
    length classes; ``sweep_groups`` the lockstep groups those classes
    merge into under the kernel's minimum-occupancy rule; and
    ``pad_fraction`` the share of swept stripe cells that are padding
    rather than useful DP work.  The wave scheduler's window size is
    the lever: bigger windows mean fewer, fuller groups and a smaller
    pad fraction — the software rendition of keeping the accelerator's
    PE array occupied (paper Section V-B).
    """

    jobs: int
    shape_classes: int
    sweep_groups: int
    pad_fraction: float


def wave_occupancy(
    shapes: list[tuple[int, int]], band: int
) -> WaveOccupancy:
    """Model how the striped kernel would pack ``shapes`` at ``band``.

    ``shapes`` holds one ``(qlen, tlen)`` pair per job.  Mirrors the
    kernel's own policy — geometric shape classes, shortest-target
    classes merged until a group reaches its minimum occupancy — and
    charges each group's jobs the stripe cells of the group's padded
    geometry.  Analytic only: the kernel's own ``kernel.bucket_*``
    metrics report what a live run actually did.
    """
    from repro.kernels.striped import (
        MIN_BUCKET_JOBS,
        shape_class,
    )

    if band < 0:
        raise ValueError("band must be non-negative")
    if not shapes:
        return WaveOccupancy(0, 0, 0, 0.0)
    width = 2 * band + 1
    buckets: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for qlen, tlen in shapes:
        key = (shape_class(tlen), shape_class(qlen))
        buckets.setdefault(key, []).append((qlen, tlen))
    groups: list[list[tuple[int, int]]] = []
    pending: list[tuple[int, int]] = []
    for key in sorted(buckets):
        pending.extend(buckets[key])
        if len(pending) >= MIN_BUCKET_JOBS:
            groups.append(pending)
            pending = []
    if pending:
        groups.append(pending)
    swept = useful = 0
    for group in groups:
        t_max = max(t for _, t in group)
        q_max = max(q for q, _ in group)
        dense = min(width, q_max + 1)
        for qlen, tlen in group:
            swept += dense * t_max
            useful += min(dense, qlen + 1) * tlen
    pad_fraction = 1.0 - useful / swept if swept else 0.0
    return WaveOccupancy(
        jobs=len(shapes),
        shape_classes=len(buckets),
        sweep_groups=len(groups),
        pad_fraction=pad_fraction,
    )


@dataclass(frozen=True)
class BatchingConfig:
    """Thread split and batch geometry."""

    total_threads: int = paper.F1_VCPUS
    fpga_threads: int = 1
    batch_size: int = 4096
    extensions_per_read: float = paper.EXTENSIONS_PER_READ
    seeding_reads_per_s_per_thread: float = 2_000.0
    """Software seeding rate (order of magnitude of BWA-MEM's SMEM
    stage per thread on the paper's Xeon)."""

    @property
    def seeding_threads(self) -> int:
        """Threads left for software seeding."""
        return self.total_threads - self.fpga_threads


@dataclass(frozen=True)
class BatchingReport:
    """Steady-state rates of the producer-consumer pipeline."""

    producer_ext_per_s: float
    fpga_ext_per_s: float
    driver_ext_per_s: float
    bottleneck: str

    @property
    def throughput_ext_per_s(self) -> float:
        """Steady-state system throughput (the slowest stage)."""
        return min(
            self.producer_ext_per_s,
            self.fpga_ext_per_s,
            self.driver_ext_per_s,
        )

    @property
    def fpga_utilization(self) -> float:
        """Fraction of FPGA capacity the pipeline sustains."""
        return min(1.0, self.throughput_ext_per_s / self.fpga_ext_per_s)


def simulate_batching(
    config: BatchingConfig | None = None,
    instance: F1Instance | None = None,
    fpga_throughput_ext_per_s: float | None = None,
) -> BatchingReport:
    """Steady-state rates for one thread/batch configuration."""
    cfg = config or BatchingConfig()
    inst = instance or F1Instance()
    fpga_rate = fpga_throughput_ext_per_s or timing.fpga_throughput()

    producer = (
        cfg.seeding_threads
        * cfg.seeding_reads_per_s_per_thread
        * cfg.extensions_per_read
    )

    # One FPGA thread's cycle: package + DMA in, wait for compute
    # (overlapped with other threads' transfers), DMA out.  With k
    # threads pipelining, the driver sustains k batches per
    # (transfer + result) window plus the lock-serialized compute.
    batch = BatchTransfer(cfg.batch_size)
    xfer = batch.transfer_seconds(inst) + batch.result_seconds(inst)
    compute = cfg.batch_size / fpga_rate
    per_batch_serial = max(compute, xfer / max(1, cfg.fpga_threads))
    driver = cfg.batch_size / per_batch_serial

    rates = {
        "seeding": producer,
        "fpga-compute": fpga_rate,
        "fpga-driver": driver,
    }
    bottleneck = min(rates, key=rates.get)
    return BatchingReport(
        producer_ext_per_s=producer,
        fpga_ext_per_s=fpga_rate,
        driver_ext_per_s=driver,
        bottleneck=bottleneck,
    )


def best_thread_split(
    total_threads: int = paper.F1_VCPUS,
    instance: F1Instance | None = None,
) -> tuple[BatchingConfig, BatchingReport]:
    """Sweep the FPGA/seeding thread split and keep the best.

    Reproduces the paper's observation that almost all threads should
    go to seeding — the FPGA needs very little driving.
    """
    best: tuple[BatchingConfig, BatchingReport] | None = None
    for fpga_threads in range(1, total_threads):
        cfg = BatchingConfig(
            total_threads=total_threads, fpga_threads=fpga_threads
        )
        report = simulate_batching(cfg, instance)
        if (
            best is None
            or report.throughput_ext_per_s
            > best[1].throughput_ext_per_s
        ):
            best = (cfg, report)
    assert best is not None
    return best
