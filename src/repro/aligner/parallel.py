"""Sharded multi-process alignment: partition reads across workers.

Reads are split into contiguous shards, one per worker process; each
worker holds the whole reference and its seeding index read-only (on
fork platforms the parent builds them once and children inherit the
pages copy-on-write) and drives its shard through the deferred-
extension wave scheduler (:mod:`repro.aligner.waves`).  Results come
back tagged with their shard index and are re-concatenated in input
order, so the merged SAM is byte-identical to a single-process run —
the differential suite pins scalar x batched x worker counts to one
output.

Observability: each worker zeroes its (inherited) registry, collects
its own measurements, and ships a snapshot back with its records; the
parent folds every snapshot into the live registry via
:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot` and adds
``pipeline.shard.*`` accounting on top.  Span traces stay worker-local
(timelines are not mergeable across processes).

Engines cannot be pickled (they hold caches, RNGs, registries), so
workers receive an :class:`EngineSpec` — a frozen, picklable recipe —
and build their own engine from it.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.aligner.cache import DEFAULT_MAX_ENTRIES
from repro.aligner.waves import DEFAULT_BATCH_SIZE
from repro.genome.sam import SamRecord
from repro.obs import names

_STATE = None
"""Worker-process aligner; pre-built by the parent on fork platforms."""


@dataclass(frozen=True)
class EngineSpec:
    """A picklable recipe for building an extension engine.

    ``kind`` selects the engine class (``full``, ``banded``,
    ``batched``, ``seedex``); ``band`` is required for ``banded``,
    optional for ``batched`` (``None`` = full band) and ``seedex``.
    The chaos fields mirror the CLI's ``--chaos`` flags: with
    ``chaos=True`` the built engine is wrapped in the fault-injecting
    resilient dispatcher, each worker running its own injector (same
    seed, disjoint job streams).
    """

    kind: str = "full"
    band: int | None = None
    cache_entries: int = DEFAULT_MAX_ENTRIES
    chaos: bool = False
    fault_rate: float = 0.01
    fault_seed: int = 0
    max_retries: int = 3
    timeout_s: float = 0.25

    def build(self):
        """Construct the engine (plus chaos wrapper) this spec names."""
        from repro.aligner.engines import (
            BatchedEngine,
            FullBandEngine,
            PlainBandedEngine,
            SeedExEngine,
            make_resilient,
        )

        registry = obs.get_registry() if obs.enabled() else None
        if self.kind == "full":
            engine = FullBandEngine()
        elif self.kind == "banded":
            if self.band is None:
                raise ValueError("kind='banded' needs a band")
            engine = PlainBandedEngine(self.band)
        elif self.kind == "batched":
            engine = BatchedEngine(
                band=self.band, cache_entries=self.cache_entries
            )
        elif self.kind == "seedex":
            engine = SeedExEngine(
                band=self.band if self.band is not None else 41,
                registry=registry,
            )
        else:
            raise ValueError(f"unknown engine kind {self.kind!r}")
        if not self.chaos:
            return engine
        return make_resilient(
            engine,
            fault_rate=self.fault_rate,
            fault_seed=self.fault_seed,
            max_retries=self.max_retries,
            timeout_s=self.timeout_s,
            registry=registry,
        )


def _build_aligner(reference, spec: EngineSpec, options: dict):
    """One worker's aligner: engine from the spec, index from scratch."""
    from repro.aligner.pipeline import Aligner

    return Aligner(reference, spec.build(), **options)


def _init_worker(reference, spec, options, collect) -> None:
    """Pool initializer: adopt the forked state or build a fresh one."""
    global _STATE
    if collect and not obs.enabled():
        obs.enable()
    if _STATE is None:
        _STATE = _build_aligner(reference, spec, options)


def _run_shard(task):
    """Align one shard in a worker; returns records + a metrics snapshot.

    The inherited registry still holds the parent's pre-fork counts,
    so it is zeroed before the shard runs — the snapshot shipped back
    contains exactly this shard's measurements.
    """
    index, reads, batch_size, collect = task
    if collect:
        obs.reset()
    records = _STATE.align_batched(reads, batch_size=batch_size)
    snapshot = obs.get_registry().snapshot() if collect else None
    return index, records, snapshot


def _shard_plan(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` slices, one per shard."""
    base, extra = divmod(count, workers)
    plan: list[tuple[int, int]] = []
    start = 0
    for shard in range(workers):
        stop = start + base + (1 if shard < extra else 0)
        plan.append((start, stop))
        start = stop
    return plan


def align_sharded(
    reference: np.ndarray,
    reads,
    spec: EngineSpec | None = None,
    workers: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    **aligner_options,
) -> list[SamRecord]:
    """Align ``reads`` across ``workers`` processes, input order kept.

    ``reads`` may be ``(name, codes)`` pairs or ``SimulatedRead``-like
    objects; ``aligner_options`` are forwarded to
    :class:`~repro.aligner.pipeline.Aligner` (``seeding``,
    ``reference_name``, ...).  ``workers=1`` runs in-process with no
    multiprocessing at all.  Output is byte-identical to
    ``Aligner.align`` with the same engine configuration.
    """
    global _STATE
    if workers < 1:
        raise ValueError("workers must be at least 1")
    spec = spec or EngineSpec()
    normalized = [
        (read.name, np.asarray(read.codes, dtype=np.uint8))
        if hasattr(read, "codes")
        else (read[0], np.asarray(read[1], dtype=np.uint8))
        for read in reads
    ]
    workers = max(1, min(workers, len(normalized)))
    collect = obs.enabled()

    if workers == 1:
        aligner = _build_aligner(reference, spec, aligner_options)
        records = aligner.align_batched(normalized, batch_size=batch_size)
        _note_shards(collect, [len(normalized)], merged=0)
        return records

    plan = _shard_plan(len(normalized), workers)
    tasks = [
        (i, normalized[start:stop], batch_size, collect)
        for i, (start, stop) in enumerate(plan)
    ]

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    forked = ctx.get_start_method() == "fork"
    if forked:
        # Build once in the parent; children inherit the reference and
        # seeding index copy-on-write instead of rebuilding per worker.
        _STATE = _build_aligner(reference, spec, aligner_options)
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(reference, spec, aligner_options, collect),
        ) as pool:
            results = pool.map(_run_shard, tasks)
    finally:
        _STATE = None

    results.sort(key=lambda item: item[0])
    records = [rec for _, shard_records, _ in results for rec in shard_records]
    merged = 0
    if collect:
        registry = obs.get_registry()
        for _, _, snapshot in results:
            if snapshot is not None:
                registry.absorb_snapshot(snapshot)
                merged += 1
    _note_shards(collect, [stop - start for start, stop in plan], merged)
    return records


def _note_shards(collect: bool, shard_sizes: list[int], merged: int) -> None:
    """Parent-side ``pipeline.shard.*`` accounting after a run."""
    if not collect:
        return
    registry = obs.get_registry()
    registry.gauge(
        names.PIPELINE_SHARD_WORKERS, "workers in the last sharded run"
    ).set(len(shard_sizes))
    for shard, size in enumerate(shard_sizes):
        registry.counter(
            names.PIPELINE_SHARD_READS,
            "reads dispatched to shards",
            shard=shard,
        ).inc(size)
    if merged:
        registry.counter(
            names.PIPELINE_SHARD_SNAPSHOTS_MERGED,
            "worker metric snapshots folded into the parent registry",
        ).inc(merged)
