"""Sharded multi-process alignment: partition reads across workers.

Reads are split into contiguous shards, one per worker process; each
worker holds the whole reference and its seeding index read-only (on
fork platforms the parent builds them once and children inherit the
pages copy-on-write) and drives its shard through the deferred-
extension wave scheduler (:mod:`repro.aligner.waves`).  Results come
back tagged with their shard index and are re-concatenated in input
order, so the merged SAM is byte-identical to a single-process run —
the differential suite pins scalar x batched x worker counts to one
output.

Two runners share the worker machinery:

* :func:`align_sharded` — the simple pool: one contiguous shard per
  worker, no supervision; a worker crash crashes the run;
* :func:`align_supervised` — the durable runner: reads are dispatched
  window by window to supervised workers with heartbeat tracking,
  bounded restarts after crashes or hangs, poison-shard bisection
  down to the offending read (quarantined, not fatal), and optional
  journaling of completed windows for ``--resume``.  See
  ``docs/durability.md``.

Worker start-up is start-method agnostic: state is keyed off a
module-level slot that fork platforms pre-populate for copy-on-write
sharing, and every worker entry point rebuilds the aligner from its
pickled arguments when the slot is empty — so ``spawn`` (macOS,
Windows, or ``start_method="spawn"``) behaves identically, just
without the page sharing.

Observability: each worker zeroes its (inherited) registry, collects
its own measurements, and ships a snapshot back with its records; the
parent folds every snapshot into the live registry via
:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot` and adds
``pipeline.shard.*`` accounting on top.  Span traces stay worker-local
(timelines are not mergeable across processes).

Engines cannot be pickled (they hold caches, RNGs, registries), so
workers receive an :class:`EngineSpec` — a frozen, picklable recipe —
and build their own engine from it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

import numpy as np

from repro import obs
from repro.aligner.cache import DEFAULT_MAX_ENTRIES
from repro.aligner.waves import DEFAULT_BATCH_SIZE
from repro.durability.supervisor import (
    QUARANTINE_TAG,
    HeartbeatBoard,
    PoisonPlan,
    Quarantine,
    SupervisorError,
    SupervisorPolicy,
)
from repro.genome.sam import SamRecord
from repro.genome.sequence import decode
from repro.index.store import IndexHandle
from repro.obs import names

_STATE = None
"""Worker-process aligner; pre-built by the parent on fork platforms."""


class StartMethodError(TypeError):
    """Spawn-start workers cannot rebuild the requested worker state.

    Raised *before* any worker starts when ``start_method="spawn"``
    (or a platform without ``fork``) is combined with state that only
    works through fork inheritance — an unpicklable reference, engine
    spec, or aligner option.  Under ``fork`` children inherit such
    objects copy-on-write; under ``spawn`` they arrive pickled, and
    without this check the failure surfaces as a bare pickle traceback
    from deep inside the pool machinery.
    """


def _validate_spawn_payload(reference, spec, options) -> None:
    """Fail fast when worker ``initargs`` cannot survive a spawn.

    Every value shipped to a spawn worker is round-tripped through
    pickle here, so an unpicklable engine spec or aligner option is a
    typed :class:`StartMethodError` at the call site instead of a
    ``PicklingError`` traceback out of a worker bootstrap.
    """
    import pickle

    payload = (
        ("reference", reference),
        ("engine spec", spec),
        ("aligner options", options),
    )
    for label, value in payload:
        try:
            pickle.dumps(value)
        except Exception as exc:
            raise StartMethodError(
                f"start method 'spawn' ships the {label} to workers by "
                f"pickling, but it is not picklable "
                f"({type(exc).__name__}: {exc}); spawn workers cannot "
                "inherit live objects the way fork children do — use "
                "start_method='fork', or pass picklable values (e.g. an "
                "EngineSpec recipe instead of an engine instance)"
            ) from exc


def _probe_index(options: dict) -> None:
    """Fail fast in the parent when the shipped index is unusable.

    Workers receive an :class:`~repro.index.store.IndexHandle` inside
    ``aligner_options`` and open the artifact themselves; probing it
    here (envelope + pinned-fingerprint check, no section reads)
    surfaces a vanished or swapped artifact as a typed error at the
    dispatch site — before any process is spawned — instead of the
    same error fanned out once per worker.
    """
    handle = options.get("index")
    if isinstance(handle, IndexHandle):
        handle.open(mmap=True, verify=False)


def _resolve_context(start_method: str | None):
    """The multiprocessing context to run workers under.

    ``None`` prefers ``fork`` (copy-on-write index sharing) and falls
    back to ``spawn``; an explicit method is validated against the
    platform.  Every worker entry point rebuilds its own state when
    the forked module global is absent, so any method works.
    """
    methods = mp.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else "spawn"
    elif start_method not in methods:
        raise ValueError(
            f"start method {start_method!r} unavailable on this "
            f"platform (have: {', '.join(methods)})"
        )
    return mp.get_context(start_method), start_method


@dataclass(frozen=True)
class EngineSpec:
    """A picklable recipe for building an extension engine.

    ``kind`` selects the engine class (``full``, ``banded``,
    ``batched``, ``seedex``); ``band`` is required for ``banded``,
    optional for ``batched`` (``None`` = full band) and ``seedex``.
    The chaos fields mirror the CLI's ``--chaos`` flags: with
    ``chaos=True`` the built engine is wrapped in the fault-injecting
    resilient dispatcher, each worker running its own injector (same
    seed, disjoint job streams).  ``breaker_threshold`` (``None`` =
    off) arms the accelerator circuit breaker inside that dispatcher
    — see :mod:`repro.durability.breaker`.  ``kernel`` names the DP
    backend (``scalar``/``numpy``/``striped``; ``None`` = environment
    default) — a name rather than an instance so the spec stays
    picklable.
    """

    kind: str = "full"
    band: int | None = None
    cache_entries: int = DEFAULT_MAX_ENTRIES
    kernel: str | None = None
    chaos: bool = False
    fault_rate: float = 0.01
    fault_seed: int = 0
    max_retries: int = 3
    timeout_s: float = 0.25
    breaker_threshold: int | None = None
    breaker_probe_interval: int = 32

    def build(self):
        """Construct the engine (plus chaos wrapper) this spec names."""
        from repro.aligner.engines import (
            BatchedEngine,
            FullBandEngine,
            PlainBandedEngine,
            SeedExEngine,
            make_resilient,
        )

        registry = obs.get_registry() if obs.enabled() else None
        if self.kind == "full":
            engine = FullBandEngine(kernel=self.kernel)
        elif self.kind == "banded":
            if self.band is None:
                raise ValueError("kind='banded' needs a band")
            engine = PlainBandedEngine(self.band, kernel=self.kernel)
        elif self.kind == "batched":
            engine = BatchedEngine(
                band=self.band,
                cache_entries=self.cache_entries,
                kernel=self.kernel,
            )
        elif self.kind == "seedex":
            engine = SeedExEngine(
                band=self.band if self.band is not None else 41,
                registry=registry,
                kernel=self.kernel,
            )
        else:
            raise ValueError(f"unknown engine kind {self.kind!r}")
        if not self.chaos and self.breaker_threshold is None:
            return engine
        return make_resilient(
            engine,
            fault_rate=self.fault_rate if self.chaos else 0.0,
            fault_seed=self.fault_seed,
            max_retries=self.max_retries,
            timeout_s=self.timeout_s,
            registry=registry,
            breaker_threshold=self.breaker_threshold,
            breaker_probe_interval=self.breaker_probe_interval,
        )


def _build_aligner(reference, spec: EngineSpec, options: dict):
    """One worker's aligner: engine from the spec, index from scratch."""
    from repro.aligner.pipeline import Aligner

    return Aligner(reference, spec.build(), **options)


def _init_worker(reference, spec, options, collect) -> None:
    """Pool initializer: adopt the forked state or build a fresh one.

    Spawn-safe by construction: everything needed to build the
    aligner arrives pickled in ``initargs``, and the forked module
    global is only an optimization — when it is absent (``spawn``
    start method, or a fork platform that skipped pre-building) the
    worker builds its own aligner here instead of crashing on the
    fork assumption.
    """
    global _STATE
    if collect and not obs.enabled():
        obs.enable()
    if _STATE is None:
        _STATE = _build_aligner(reference, spec, options)


def _run_shard(task):
    """Align one shard in a worker; returns records + a metrics snapshot.

    The inherited registry still holds the parent's pre-fork counts,
    so it is zeroed before the shard runs — the snapshot shipped back
    contains exactly this shard's measurements.
    """
    index, reads, batch_size, collect = task
    if collect:
        obs.reset()
    records = _STATE.align_batched(reads, batch_size=batch_size)
    snapshot = obs.get_registry().snapshot() if collect else None
    return index, records, snapshot


def _shard_plan(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` slices, one per shard."""
    base, extra = divmod(count, workers)
    plan: list[tuple[int, int]] = []
    start = 0
    for shard in range(workers):
        stop = start + base + (1 if shard < extra else 0)
        plan.append((start, stop))
        start = stop
    return plan


def _normalize_reads(reads) -> list[tuple[str, np.ndarray]]:
    """Coerce reads to ``(name, uint8 codes)`` pairs."""
    return [
        (read.name, np.asarray(read.codes, dtype=np.uint8))
        if hasattr(read, "codes")
        else (read[0], np.asarray(read[1], dtype=np.uint8))
        for read in reads
    ]


def align_sharded(
    reference: np.ndarray,
    reads,
    spec: EngineSpec | None = None,
    workers: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    start_method: str | None = None,
    **aligner_options,
) -> list[SamRecord]:
    """Align ``reads`` across ``workers`` processes, input order kept.

    ``reads`` may be ``(name, codes)`` pairs or ``SimulatedRead``-like
    objects; ``aligner_options`` are forwarded to
    :class:`~repro.aligner.pipeline.Aligner` (``seeding``,
    ``reference_name``, ...).  ``workers=1`` runs in-process with no
    multiprocessing at all.  ``start_method`` forces ``fork``/``spawn``
    (``None`` = platform default).  Output is byte-identical to
    ``Aligner.align`` with the same engine configuration.
    """
    global _STATE
    if workers < 1:
        raise ValueError("workers must be at least 1")
    spec = spec or EngineSpec()
    normalized = _normalize_reads(reads)
    workers = max(1, min(workers, len(normalized)))
    collect = obs.enabled()

    if workers == 1:
        aligner = _build_aligner(reference, spec, aligner_options)
        records = aligner.align_batched(normalized, batch_size=batch_size)
        _note_shards(collect, [len(normalized)], merged=0)
        return records

    plan = _shard_plan(len(normalized), workers)
    tasks = [
        (i, normalized[start:stop], batch_size, collect)
        for i, (start, stop) in enumerate(plan)
    ]

    ctx, method = _resolve_context(start_method)
    forked = method == "fork"
    _probe_index(aligner_options)
    if not forked:
        _validate_spawn_payload(reference, spec, aligner_options)
    if forked:
        # Build once in the parent; children inherit the reference and
        # seeding index copy-on-write instead of rebuilding per worker.
        _STATE = _build_aligner(reference, spec, aligner_options)
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(reference, spec, aligner_options, collect),
        ) as pool:
            results = pool.map(_run_shard, tasks)
    finally:
        _STATE = None

    results.sort(key=lambda item: item[0])
    records = [rec for _, shard_records, _ in results for rec in shard_records]
    merged = 0
    if collect:
        registry = obs.get_registry()
        for _, _, snapshot in results:
            if snapshot is not None:
                registry.absorb_snapshot(snapshot)
                merged += 1
    _note_shards(collect, [stop - start for start, stop in plan], merged)
    return records


# -- the supervised runner ----------------------------------------------


@dataclass
class SupervisedResult:
    """What :func:`align_supervised` produced.

    ``records`` holds the windows *computed by this call* in window
    order — on a resumed, journaled run the skipped windows live in
    the journal, not here.  ``interrupted`` is True when a graceful
    shutdown drained the in-flight wave before the plan finished.
    """

    records: list[SamRecord] = field(default_factory=list)
    interrupted: bool = False
    restarts: int = 0
    quarantined: list[str] = field(default_factory=list)


@dataclass
class _Task:
    """One dispatchable slice of a window (absolute read offsets)."""

    tid: int
    window: int
    lo: int
    hi: int
    depth: int = 0
    crashes: int = 0


def _supervised_worker(
    slot: int,
    parent_pid: int,
    reference,
    spec: EngineSpec,
    options: dict,
    task_q,
    result_conn,
    board: HeartbeatBoard,
    hb_interval: float,
    poison: PoisonPlan | None,
    collect: bool,
) -> None:
    """Worker loop: heartbeat thread + one task at a time.

    Start-method agnostic: adopts the forked module state when
    present, rebuilds from the pickled arguments otherwise.  Signals
    are left to the supervisor — SIGINT/SIGTERM are ignored so a
    Ctrl-C against the process group cannot kill a worker mid-window
    (the parent drains and shuts workers down via their queues).
    Exceptions escaping a task are reported as ``fail`` messages; the
    process itself only dies if it is killed.

    Results go over a private pipe, not a shared queue, and
    ``Connection.send`` is synchronous — so a SIGKILL between tasks
    can never leave a half-written message, and a kill mid-send tears
    only this worker's pipe, never the others'.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    global _STATE
    if collect and not obs.enabled():
        obs.enable()
    if _STATE is None:
        _STATE = _build_aligner(reference, spec, options)
    hb_stop = board.start_thread(slot, hb_interval)

    def _orphaned() -> bool:
        return os.getppid() != parent_pid

    while True:
        try:
            task = task_q.get(timeout=1.0)
        except queue_mod.Empty:
            if _orphaned():
                # Parent was SIGKILLed: nobody will ever send the
                # sentinel, so exit instead of lingering forever.
                os._exit(1)
            continue
        if task is None:
            break
        tid, reads_slice = task
        if collect:
            obs.reset()
        try:
            if poison is not None:
                for name, _ in reads_slice:
                    poison.apply(name, heartbeat_stop=hb_stop)
            records = _STATE.align_batched(
                reads_slice, batch_size=max(1, len(reads_slice))
            )
        except Exception as exc:  # reported, not fatal: supervisor bisects
            result_conn.send(
                ("fail", slot, tid, f"{type(exc).__name__}: {exc}")
            )
            continue
        snapshot = obs.get_registry().snapshot() if collect else None
        result_conn.send(("done", slot, tid, records, snapshot))
    hb_stop.set()
    result_conn.close()


class _Supervisor:
    """Parent-side state machine of one supervised run."""

    def __init__(
        self,
        ctx,
        forked: bool,
        reference,
        normalized,
        spec: EngineSpec,
        options: dict,
        workers: int,
        policy: SupervisorPolicy,
        poison: PoisonPlan | None,
        quarantine: Quarantine | None,
        journal,
        should_stop,
        collect: bool,
    ) -> None:
        self.ctx = ctx
        self.forked = forked
        self.reference = reference
        self.normalized = normalized
        self.spec = spec
        self.options = options
        self.workers = workers
        self.policy = policy
        self.poison = poison
        self.quarantine = quarantine
        self.journal = journal
        self.should_stop = should_stop or (lambda: False)
        self.collect = collect
        self.parent_pid = os.getpid()

        self.board = HeartbeatBoard(ctx, workers)
        self.procs: list = [None] * workers
        self.task_qs: list = [None] * workers
        self.conns: list = [None] * workers  # parent end of result pipes
        self.assignments: dict[int, int] = {}
        self.tasks: dict[int, _Task] = {}
        self.pending: deque[int] = deque()
        self.next_tid = 0
        self.window_tasks: dict[int, set[int]] = {}
        self.window_parts: dict[int, list[tuple[int, list[SamRecord]]]] = {}
        self.done_windows: dict[int, list[SamRecord]] = {}
        self.restarts = 0
        self.quarantined: list[str] = []
        self.stopping = False

    # -- task plumbing --------------------------------------------------

    def add_window(self, window: int, lo: int, hi: int) -> None:
        """Register one window of reads as a single pending task."""
        task = self._new_task(window, lo, hi, depth=0)
        self.window_tasks[window] = {task.tid}
        self.window_parts[window] = []

    def _new_task(self, window: int, lo: int, hi: int, depth: int) -> _Task:
        task = _Task(tid=self.next_tid, window=window, lo=lo, hi=hi,
                     depth=depth)
        self.next_tid += 1
        self.tasks[task.tid] = task
        self.pending.append(task.tid)
        return task

    @property
    def windows_remaining(self) -> int:
        """Windows still missing at least one slice."""
        return len(self.window_tasks) - len(self.done_windows)

    # -- worker lifecycle -----------------------------------------------

    def _spawn(self, slot: int) -> None:
        """(Re)start the worker in ``slot``: fresh queue, fresh pipe."""
        old_conn = self.conns[slot]
        if old_conn is not None:
            old_conn.close()
        recv_conn, send_conn = self.ctx.Pipe(duplex=False)
        task_q = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_supervised_worker,
            args=(
                slot,
                self.parent_pid,
                self.reference,
                self.spec,
                self.options,
                task_q,
                send_conn,
                self.board,
                self.policy.heartbeat_interval,
                self.poison,
                self.collect,
            ),
            daemon=True,
        )
        proc.start()
        # Parent drops its copy of the write end so a dead worker
        # reads as EOF instead of a forever-pending pipe.
        send_conn.close()
        self.board.touch(slot)
        self.procs[slot] = proc
        self.task_qs[slot] = task_q
        self.conns[slot] = recv_conn

    def _count_restart(self) -> None:
        self.restarts += 1
        if obs.enabled():
            obs.get_registry().counter(
                names.PIPELINE_SHARD_RESTARTS,
                "supervised worker respawns",
            ).inc()
        if self.restarts > self.policy.max_restarts:
            raise SupervisorError(
                f"restart budget exhausted ({self.policy.max_restarts}); "
                "the corpus crashes workers faster than bisection can "
                "quarantine it"
            )

    # -- main loop ------------------------------------------------------

    def run(self) -> SupervisedResult:
        """Drive the run to completion (or a graceful drain)."""
        if self.forked:
            global _STATE
            _STATE = _build_aligner(
                self.reference, self.spec, self.options
            )
        try:
            while True:
                if not self.stopping and self.should_stop():
                    self.stopping = True
                    self.pending.clear()
                self._dispatch()
                if not self.assignments:
                    if self.stopping or not self.pending:
                        break
                self._drain_results()
                self._check_health()
        finally:
            if self.forked:
                _STATE = None
            self._shutdown_workers()
        records = [
            rec
            for _, window_records in sorted(self.done_windows.items())
            for rec in window_records
        ]
        interrupted = self.stopping and self.windows_remaining > 0
        return SupervisedResult(
            records=records,
            interrupted=interrupted,
            restarts=self.restarts,
            quarantined=list(self.quarantined),
        )

    def _dispatch(self) -> None:
        if self.stopping:
            return
        busy = set(self.assignments)
        for slot in range(self.workers):
            if not self.pending:
                return
            if slot in busy:
                continue
            proc = self.procs[slot]
            if proc is None:
                self._spawn(slot)
            elif not proc.is_alive():
                # Died while idle (e.g. poison at the tail of its last
                # task); replace it before assigning new work.
                self._count_restart()
                self._spawn(slot)
            tid = self.pending.popleft()
            task = self.tasks[tid]
            self.task_qs[slot].put(
                (tid, self.normalized[task.lo : task.hi])
            )
            self.assignments[slot] = tid

    def _drain_results(self) -> None:
        live = [conn for conn in self.conns if conn is not None]
        if not live:
            time.sleep(self.policy.poll_interval)
            return
        ready = mp_connection.wait(
            live, timeout=self.policy.poll_interval
        )
        for conn in ready:
            slot = self.conns.index(conn)
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                # Worker died (EOF) or tore its pipe mid-send; stop
                # selecting this pipe — _check_health reassigns the
                # task and _spawn replaces pipe and worker together.
                conn.close()
                self.conns[slot] = None
                continue
            self._handle(msg)

    def _handle(self, msg) -> None:
        kind = msg[0]
        if kind == "done":
            _, slot, tid, records, snapshot = msg
            if self.assignments.get(slot) == tid:
                del self.assignments[slot]
            if snapshot is not None:
                obs.get_registry().absorb_snapshot(snapshot)
                if obs.enabled():
                    obs.get_registry().counter(
                        names.PIPELINE_SHARD_SNAPSHOTS_MERGED,
                        "worker metric snapshots folded into the "
                        "parent registry",
                    ).inc()
            if obs.enabled():
                obs.get_registry().counter(
                    names.PIPELINE_SHARD_READS,
                    "reads dispatched to shards",
                    shard=slot,
                ).inc(len(records))
            self._complete_task(tid, records)
        elif kind == "fail":
            _, slot, tid, reason = msg
            if self.assignments.get(slot) == tid:
                del self.assignments[slot]
            self._task_crashed(tid, reason)

    def _check_health(self) -> None:
        for slot, tid in list(self.assignments.items()):
            proc = self.procs[slot]
            if proc.is_alive():
                if self.board.age(slot) > self.policy.hung_timeout:
                    if obs.enabled():
                        obs.get_registry().counter(
                            names.PIPELINE_SHARD_HEARTBEATS_MISSED,
                            "workers killed for silent heartbeats",
                        ).inc()
                    proc.kill()
                    proc.join(timeout=self.policy.shutdown_grace_s)
                    self._worker_lost(
                        slot, tid, "worker hung (missed heartbeats)"
                    )
                continue
            # Dead: a result for this task may still sit in the queue.
            self._drain_results()
            if self.assignments.get(slot) != tid:
                continue  # the task actually finished before death
            self._worker_lost(
                slot, tid, f"worker died (exitcode {proc.exitcode})"
            )

    def _worker_lost(self, slot: int, tid: int, reason: str) -> None:
        del self.assignments[slot]
        self._task_crashed(tid, reason)
        self._count_restart()
        if not self.stopping:
            self._spawn(slot)

    def _task_crashed(self, tid: int, reason: str) -> None:
        if self.stopping:
            return  # draining: the window stays incomplete
        task = self.tasks[tid]
        task.crashes += 1
        threshold = (
            self.policy.crash_threshold if task.depth == 0 else 1
        )
        if task.crashes < threshold:
            self.pending.append(tid)
            return
        if task.hi - task.lo == 1:
            self._quarantine_task(task, reason)
            return
        # Poison bisection: split the slice, retire the parent task.
        mid = (task.lo + task.hi) // 2
        owners = self.window_tasks[task.window]
        owners.discard(tid)
        del self.tasks[tid]
        for lo, hi in ((task.lo, mid), (mid, task.hi)):
            child = self._new_task(
                task.window, lo, hi, depth=task.depth + 1
            )
            owners.add(child.tid)

    def _quarantine_task(self, task: _Task, reason: str) -> None:
        name, codes = self.normalized[task.lo]
        if self.quarantine is not None:
            self.quarantine.add(name, codes, reason)
        self.quarantined.append(name)
        if obs.enabled():
            obs.get_registry().counter(
                names.PIPELINE_READS_QUARANTINED,
                "poison reads isolated by bisection",
            ).inc()
        record = SamRecord.unmapped(
            name, decode(codes), tags=(QUARANTINE_TAG,)
        )
        self._complete_task(task.tid, [record])

    def _complete_task(self, tid: int, records: list[SamRecord]) -> None:
        task = self.tasks.pop(tid, None)
        if task is None:
            return  # duplicate completion (e.g. post-crash re-run)
        window = task.window
        owners = self.window_tasks[window]
        owners.discard(tid)
        self.window_parts[window].append((task.lo, records))
        if owners:
            return
        parts = sorted(self.window_parts[window], key=lambda p: p[0])
        window_records = [rec for _, recs in parts for rec in recs]
        self.done_windows[window] = window_records
        if self.journal is not None:
            self.journal.record(window, window_records)

    def _shutdown_workers(self) -> None:
        for slot in range(self.workers):
            proc, task_q = self.procs[slot], self.task_qs[slot]
            if proc is None:
                continue
            if proc.is_alive():
                try:
                    task_q.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.time() + self.policy.shutdown_grace_s
        for proc in self.procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.time()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.policy.shutdown_grace_s)
        for slot, conn in enumerate(self.conns):
            if conn is not None:
                conn.close()
                self.conns[slot] = None


def align_supervised(
    reference: np.ndarray,
    reads,
    spec: EngineSpec | None = None,
    workers: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    policy: SupervisorPolicy | None = None,
    poison: PoisonPlan | None = None,
    quarantine: Quarantine | None = None,
    journal=None,
    should_stop=None,
    start_method: str | None = None,
    **aligner_options,
) -> SupervisedResult:
    """Align ``reads`` under crash supervision, window by window.

    The durable counterpart of :func:`align_sharded`: reads are split
    into windows of ``batch_size`` and dispatched one window at a time
    to ``workers`` supervised processes.  A worker that dies (any
    exitcode, SIGKILL included) or goes silent past the heartbeat
    deadline is respawned — within ``policy.max_restarts`` — and its
    window re-dispatched; a window that keeps crashing is bisected
    down to the poison read, which is quarantined (``quarantine``,
    optional) and emitted unmapped with ``XF:Z:quarantined``.

    ``journal`` (a :class:`~repro.durability.journal.RunJournal`)
    persists each completed window and pre-completed windows are
    skipped; ``should_stop`` is polled between dispatches — when it
    turns true the in-flight wave drains, completed windows are
    journaled, and the result comes back ``interrupted=True``.

    For a healthy corpus the records are byte-identical to
    :func:`align_sharded` / ``Aligner.align`` with the same engine
    configuration.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    spec = spec or EngineSpec()
    policy = policy or SupervisorPolicy()
    normalized = _normalize_reads(reads)
    collect = obs.enabled()
    if collect:
        obs.get_registry().gauge(
            names.PIPELINE_SHARD_WORKERS,
            "workers in the last sharded run",
        ).set(workers)
    completed = (
        journal.completed if journal is not None else frozenset()
    )

    ctx, method = _resolve_context(start_method)
    _probe_index(aligner_options)
    if method != "fork":
        _validate_spawn_payload(reference, spec, aligner_options)
    supervisor = _Supervisor(
        ctx=ctx,
        forked=method == "fork",
        reference=reference,
        normalized=normalized,
        spec=spec,
        options=aligner_options,
        workers=max(1, min(workers, max(1, len(normalized)))),
        policy=policy,
        poison=poison,
        quarantine=quarantine,
        journal=journal,
        should_stop=should_stop,
        collect=collect,
    )
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    n_skipped = 0
    for window, lo in enumerate(range(0, len(normalized), batch_size)):
        hi = min(lo + batch_size, len(normalized))
        if window in completed:
            n_skipped += 1
            continue
        supervisor.add_window(window, lo, hi)
    if collect and n_skipped:
        obs.get_registry().counter(
            names.DURABILITY_WINDOWS_SKIPPED,
            "windows skipped by resume",
        ).inc(n_skipped)
    return supervisor.run()


def _note_shards(collect: bool, shard_sizes: list[int], merged: int) -> None:
    """Parent-side ``pipeline.shard.*`` accounting after a run."""
    if not collect:
        return
    registry = obs.get_registry()
    registry.gauge(
        names.PIPELINE_SHARD_WORKERS, "workers in the last sharded run"
    ).set(len(shard_sizes))
    for shard, size in enumerate(shard_sizes):
        registry.counter(
            names.PIPELINE_SHARD_READS,
            "reads dispatched to shards",
            shard=shard,
        ).inc(size)
    if merged:
        registry.counter(
            names.PIPELINE_SHARD_SNAPSHOTS_MERGED,
            "worker metric snapshots folded into the parent registry",
        ).inc(merged)
