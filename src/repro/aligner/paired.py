"""Paired-end alignment: proper pairs, mate rescue, SAM pair flags.

The paper's dataset is single-end ERR194147, but BWA-MEM's production
mode — and the mode any adopter of this library runs — is paired-end.
This module adds it on top of the single-end pipeline:

* both mates align independently (any extension engine, so SeedEx's
  bit-equivalence guarantee carries over verbatim);
* pairs are scored with an insert-size model and flagged proper when
  orientation (forward/reverse, FR) and insert size agree;
* **mate rescue**: when one mate is unmapped or discordant, a
  SeedEx extension searches the window implied by the mapped mate and
  the insert distribution — the same speculate-and-test kernel, used
  as a targeted aligner.

SAM output carries the pair flags/fields (0x1/0x2/0x40/0x80, mate
reverse, RNEXT/PNEXT/TLEN).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.align.cigar import Cigar
from repro.align.fullmatrix import traceback_extension
from repro.aligner.pipeline import DEGRADED, Aligner, _resolve_end
from repro.core.extender import SeedExtender
from repro.genome.sam import FLAG_REVERSE, SamRecord
from repro.genome.sequence import decode, reverse_complement
from repro.genome.synth import ReadProfile
from repro.obs import names

FLAG_PAIRED = 0x1
FLAG_PROPER = 0x2
FLAG_MATE_UNMAPPED = 0x8
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST = 0x40
FLAG_SECOND = 0x80


@dataclass(frozen=True)
class InsertSizeModel:
    """FR library: mates face each other, insert ~ N(mean, std)."""

    mean: float = 400.0
    std: float = 50.0
    max_deviation: float = 4.0

    @property
    def window(self) -> tuple[int, int]:
        """Acceptable insert-size range (lo, hi)."""
        lo = int(self.mean - self.max_deviation * self.std)
        hi = int(self.mean + self.max_deviation * self.std)
        return max(0, lo), hi

    def is_proper(self, insert: int) -> bool:
        """Whether an observed insert size is concordant."""
        lo, hi = self.window
        return lo <= insert <= hi


@dataclass(frozen=True)
class ReadPair:
    """Two mates of one fragment."""

    name: str
    first: np.ndarray
    second: np.ndarray


@dataclass
class _RescuePlan:
    """A rescue attempt's geometry, fixed before any DP runs.

    ``query`` is the mate in window orientation (reverse-complemented
    when the anchor is forward), ``window`` the reference slice the
    insert model implies, and ``groups`` the candidate ``(o, off)``
    placements per probe offset, in scalar enumeration order.
    """

    mate_codes: np.ndarray
    query: np.ndarray
    window: np.ndarray
    start: int
    reverse: bool
    k: int
    groups: list[list[tuple[int, int]]]


@dataclass
class PairStats:
    pairs: int = 0
    proper: int = 0
    rescued: int = 0

    @property
    def proper_rate(self) -> float:
        """Fraction of pairs flagged proper."""
        return self.proper / self.pairs if self.pairs else 0.0


def simulate_pairs(
    reference: np.ndarray,
    count: int,
    rng: np.random.Generator,
    profile: ReadProfile | None = None,
    insert: InsertSizeModel | None = None,
) -> list[tuple[ReadPair, int, int]]:
    """Simulate FR read pairs; returns (pair, pos1, pos2) with truth.

    Mate 1 is the forward read at the fragment's left end; mate 2 the
    reverse-complemented read at its right end.
    """
    profile = profile or ReadProfile(reverse_strand_fraction=0.0)
    insert = insert or InsertSizeModel()
    length = profile.read_length
    max_size = int(insert.mean + insert.max_deviation * insert.std)
    if len(reference) < max_size + length + 100:
        raise ValueError("reference too short for the insert model")
    out = []
    for k in range(count):
        size = int(rng.normal(insert.mean, insert.std))
        size = max(2 * length + 10, size)
        pos1 = int(rng.integers(0, len(reference) - size - length - 80))
        first_read = _mutated_window(reference, pos1, profile, rng)
        pos2 = pos1 + size - length
        second_read = _mutated_window(reference, pos2, profile, rng)
        pair = ReadPair(
            name=f"pair{k:06d}",
            first=first_read,
            second=reverse_complement(second_read),
        )
        out.append((pair, pos1, pos2))
    return out


def _mutated_window(
    reference: np.ndarray,
    pos: int,
    profile: ReadProfile,
    rng: np.random.Generator,
) -> np.ndarray:
    """A read originating at ``pos`` with substitution errors only."""
    window = reference[pos : pos + profile.read_length].copy()
    n_subs = int(rng.binomial(len(window), profile.substitution_rate))
    for _ in range(n_subs):
        site = int(rng.integers(0, len(window)))
        window[site] = (window[site] + int(rng.integers(1, 4))) % 4
    return window


class PairedAligner:
    """Paired-end wrapper over the single-end pipeline."""

    def __init__(
        self,
        reference: np.ndarray,
        engine=None,
        seeding: str = "kmer",
        insert: InsertSizeModel | None = None,
        rescue_band: int = 41,
    ) -> None:
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.aligner = Aligner(self.reference, engine, seeding=seeding)
        self.insert = insert or InsertSizeModel()
        self.rescuer = SeedExtender(
            band=rescue_band, scoring=self.aligner.scoring
        )
        self.stats = PairStats()

    def align_pair(self, pair: ReadPair) -> tuple[SamRecord, SamRecord]:
        """Align both mates, attempt rescue, emit flagged records."""
        self.stats.pairs += 1
        rec1 = self.aligner.align_read(pair.first, pair.name)
        rec2 = self.aligner.align_read(pair.second, pair.name)

        if self._concordant(rec1, rec2):
            pass
        elif not rec1.is_unmapped and (
            rec2.is_unmapped or not self._concordant(rec1, rec2)
        ):
            rescued = self._rescue(pair.second, rec1)
            if rescued is not None and (
                rec2.is_unmapped or self._better_pair(rec1, rescued, rec2)
            ):
                rec2 = rescued
                self.stats.rescued += 1
        elif not rec2.is_unmapped and rec1.is_unmapped:
            rescued = self._rescue(pair.first, rec2, mate_is_first=False)
            if rescued is not None:
                rec1 = rescued
                self.stats.rescued += 1

        proper = self._concordant(rec1, rec2)
        if proper:
            self.stats.proper += 1
        return self._flag(rec1, rec2, proper, first=True), self._flag(
            rec2, rec1, proper, first=False
        )

    def align_pairs(self, pairs) -> list[tuple[SamRecord, SamRecord]]:
        """Align a list of pairs in order."""
        return [self.align_pair(p) for p in pairs]

    # -- pairing logic ------------------------------------------------------

    def _concordant(self, a: SamRecord, b: SamRecord) -> bool:
        if a.is_unmapped or b.is_unmapped:
            return False
        if a.is_reverse == b.is_reverse:
            return False  # FR libraries: opposite strands
        left, right = (a, b) if a.pos <= b.pos else (b, a)
        if left.is_reverse:
            return False  # forward mate must be on the left
        insert = (
            right.pos + Cigar.parse(right.cigar).reference_length - left.pos
        )
        return self.insert.is_proper(insert)

    def _better_pair(
        self, anchor: SamRecord, rescued: SamRecord, original: SamRecord
    ) -> bool:
        if original.is_unmapped:
            return True
        return self._concordant(anchor, rescued) and not self._concordant(
            anchor, original
        )

    # -- mate rescue -----------------------------------------------------------

    def _rescue_plan(
        self, mate_codes: np.ndarray, anchor: SamRecord
    ) -> "_RescuePlan | None":
        """Everything about a rescue attempt known before any DP runs.

        The insert model and the anchor's strand fix the reference
        window and the mate's orientation; short exact probes at
        several query offsets nominate candidate placements (grouped
        by probe offset, deduplicated by implied start — the exact
        enumeration order the scalar loop uses).  Both the scalar and
        the batched rescue paths consume this plan, which is what
        makes their records byte-identical.
        """
        lo_ins, hi_ins = self.insert.window
        ref = self.reference
        if not anchor.is_reverse:
            start = anchor.pos + lo_ins - len(mate_codes) - 20
            end = anchor.pos + hi_ins + 20
            query = reverse_complement(mate_codes)
            reverse = True
        else:
            anchor_end = anchor.pos + Cigar.parse(
                anchor.cigar
            ).reference_length
            start = anchor_end - hi_ins - 20
            end = anchor_end - lo_ins + len(mate_codes) + 20
            query = mate_codes
            reverse = False
        start = max(0, start)
        end = min(len(ref), end)
        if end - start < len(mate_codes):
            return None
        window = ref[start:end]

        # Anchor via short exact probes at several query offsets (short
        # enough to survive scattered errors), then extend both sides
        # with the guaranteed kernel — the same left/right structure
        # the main pipeline uses for chain anchors.
        k = 12
        if len(query) < k:
            return None
        groups: list[list[tuple[int, int]]] = []
        seen_starts: set[int] = set()
        for o in range(0, len(query) - k + 1, 10):
            probe = query[o : o + k]
            group: list[tuple[int, int]] = []
            for off in _find_exact(window, probe):
                implied = off - o
                if implied in seen_starts:
                    continue
                seen_starts.add(implied)
                group.append((o, off))
            groups.append(group)
        return _RescuePlan(
            mate_codes=mate_codes,
            query=query,
            window=window,
            start=start,
            reverse=reverse,
            k=k,
            groups=groups,
        )

    def _candidate_jobs(self, plan: "_RescuePlan", o: int, off: int):
        """The (left, right-template) job geometry of one candidate."""
        lq = plan.query[:o][::-1].copy()
        lt = plan.window[max(0, off - o) : off][::-1].copy()
        rq = plan.query[o + plan.k :].copy()
        rt = plan.window[
            off + plan.k : off + plan.k + len(rq) + 25
        ].copy()
        return lq, lt, rq, rt

    def _extend_candidate(
        self, plan: "_RescuePlan", o: int, off: int
    ) -> tuple:
        """Left extension (reversed), then right with the accumulated
        score as h0 — the scalar schedule for one candidate."""
        lq, lt, rq, rt = self._candidate_jobs(plan, o, off)
        h0 = plan.k * self.aligner.scoring.match
        if len(lq):
            lres = self.rescuer.extend(lq, lt, h0).result
            l_end, l_score, l_clip = _resolve_end(lres, h0)
        else:
            l_end, l_score, l_clip = (0, 0), h0, 0
        if len(rq):
            rres = self.rescuer.extend(rq, rt, l_score).result
            r_end, score, r_clip = _resolve_end(rres, l_score)
        else:
            r_end, score, r_clip = (0, 0), l_score, 0
        return (score, o, off, l_end, l_score, l_clip, r_end, r_clip)

    def _select_rescue(
        self, plan: "_RescuePlan", extended: dict
    ) -> tuple | None:
        """Pick the winning candidate from pre-computed extensions.

        Replicates the scalar loop exactly — strict ``>`` best
        tracking in enumeration order and the early break after any
        probe group whose best reaches half a perfect score — so
        candidates the scalar path never extended are ignored even
        when their results sit in ``extended``.
        """
        m = self.aligner.scoring.match
        best = None
        for group in plan.groups:
            for o, off in group:
                cand = extended[(o, off)]
                if best is None or cand[0] > best[0]:
                    best = cand
            if best is not None and best[0] >= len(plan.query) * m // 2:
                break
        return best

    def _rescue(
        self,
        mate_codes: np.ndarray,
        anchor: SamRecord,
        mate_is_first: bool = True,
    ) -> SamRecord | None:
        """Search for the mate inside the insert window of the anchor.

        The mate is aligned semi-globally against the window with the
        SeedEx extender (h0 = one match: nothing is pre-anchored), so
        even the rescue path inherits the optimality guarantee.
        """
        plan = self._rescue_plan(mate_codes, anchor)
        if plan is None:
            return None
        m = self.aligner.scoring.match
        best = None
        for group in plan.groups:
            for o, off in group:
                cand = self._extend_candidate(plan, o, off)
                if best is None or cand[0] > best[0]:
                    best = cand
            if best is not None and best[0] >= len(plan.query) * m // 2:
                break
        return self._emit_rescue(plan, anchor, best)

    def _emit_rescue(
        self, plan: "_RescuePlan", anchor: SamRecord, best: tuple | None
    ) -> SamRecord | None:
        """Score-gate the winning candidate and render its record."""
        if best is None:
            return None
        score, o, off, l_end, l_score, l_clip, r_end, r_clip = best
        query, window, k = plan.query, plan.window, plan.k
        min_score = len(query) * self.aligner.scoring.match // 3
        if score < min_score:
            return None
        ops: list[tuple[int, str]] = []
        if l_clip:
            ops.append((l_clip, "S"))
        if l_end != (0, 0):
            lq = query[:o][::-1].copy()
            lt = window[max(0, off - o) : off][::-1].copy()
            ops.extend(
                traceback_extension(
                    lq, lt, self.aligner.scoring,
                    k * self.aligner.scoring.match, l_end
                ).reversed().ops
            )
        ops.append((k, "M"))
        if r_end != (0, 0):
            rq = query[o + k :].copy()
            rt = window[off + k : off + k + len(rq) + 25].copy()
            ops.extend(
                traceback_extension(
                    rq, rt, self.aligner.scoring, l_score, r_end
                ).ops
            )
        if r_clip:
            ops.append((r_clip, "S"))
        cigar = Cigar.from_ops(ops)
        pos_in_window = off - l_end[0]
        flag = FLAG_REVERSE if plan.reverse else 0
        return SamRecord(
            qname=anchor.qname,
            flag=flag,
            rname=anchor.rname,
            pos=plan.start + pos_in_window,
            mapq=max(0, min(60, score - min_score)),
            cigar=str(cigar),
            seq=decode(plan.mate_codes),
            tags=(f"AS:i:{score}", "XR:i:1"),
        )

    # -- the batched path ---------------------------------------------------

    def align_pairs_batched(
        self, pairs, engine=None, batch_size: int = 4096
    ) -> list[tuple[SamRecord, SamRecord]]:
        """Align pairs window by window with batched mate rescue.

        Phase A sends every mate of a window through the deferred-
        extension wave scheduler; phase B collects every rescue
        candidate across the window into two cross-pair extension
        waves (all left extensions, then all rights with the lefts'
        scores as ``h0``) instead of extending pair by pair.  The
        selection replays the scalar enumeration order, so records —
        flags, positions, CIGARs, tags — are byte-identical to
        :meth:`align_pair` on every pair.

        ``engine`` serves the rescue waves (``extend_wave`` engines
        take them in lockstep; ``None`` falls back to the scalar
        rescuer per job); a dead-lettered job degrades alone, through
        the same scalar rescuer.
        """
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        out: list[tuple[SamRecord, SamRecord]] = []
        for start in range(0, len(pairs), batch_size):
            out.extend(
                self._pairs_window(pairs[start : start + batch_size], engine)
            )
        return out

    def _pairs_window(
        self, pairs, engine
    ) -> list[tuple[SamRecord, SamRecord]]:
        from repro.aligner.waves import _dispatch_wave, align_window

        mates: list[tuple[str, np.ndarray]] = []
        for pair in pairs:
            mates.append((pair.name, pair.first))
            mates.append((pair.name, pair.second))
        recs = align_window(self.aligner, mates)
        self.stats.pairs += len(pairs)

        # Decide, per pair, whether (and which mate) to rescue — the
        # same ladder the scalar path walks.
        decisions: list[tuple[SamRecord, SamRecord, tuple | None]] = []
        for i, pair in enumerate(pairs):
            rec1, rec2 = recs[2 * i], recs[2 * i + 1]
            need: tuple | None = None
            if self._concordant(rec1, rec2):
                pass
            elif not rec1.is_unmapped and (
                rec2.is_unmapped or not self._concordant(rec1, rec2)
            ):
                plan = self._rescue_plan(pair.second, rec1)
                if plan is not None:
                    need = ("second", plan, rec1)
            elif not rec2.is_unmapped and rec1.is_unmapped:
                plan = self._rescue_plan(pair.first, rec2)
                if plan is not None:
                    need = ("first", plan, rec2)
            decisions.append((rec1, rec2, need))

        # Phase B: every candidate of every plan, two waves.
        cands: list[tuple[object, int, int]] = []
        for _, _, need in decisions:
            if need is None:
                continue
            for group in need[1].groups:
                for o, off in group:
                    cands.append((need[1], o, off))
        extended = self._extend_wave(cands, engine, _dispatch_wave)

        out: list[tuple[SamRecord, SamRecord]] = []
        for rec1, rec2, need in decisions:
            if need is not None:
                which, plan, anchor = need
                per_plan = {
                    (o, off): extended[(id(plan), o, off)]
                    for group in plan.groups
                    for o, off in group
                }
                best = self._select_rescue(plan, per_plan)
                rescued = self._emit_rescue(plan, anchor, best)
                if which == "second":
                    if rescued is not None and (
                        rec2.is_unmapped
                        or self._better_pair(rec1, rescued, rec2)
                    ):
                        rec2 = rescued
                        self.stats.rescued += 1
                else:
                    if rescued is not None:
                        rec1 = rescued
                        self.stats.rescued += 1
            proper = self._concordant(rec1, rec2)
            if proper:
                self.stats.proper += 1
            out.append(
                (
                    self._flag(rec1, rec2, proper, first=True),
                    self._flag(rec2, rec1, proper, first=False),
                )
            )
        return out

    def _extend_wave(self, cands, engine, dispatch) -> dict:
        """Extend every candidate via two cross-pair waves.

        Returns ``{(id(plan), o, off): candidate tuple}`` with exactly
        the values :meth:`_extend_candidate` would produce — the right
        wave threads each left result's score in as ``h0``, and any
        ``DEGRADED`` job falls back to the scalar rescuer alone.
        """
        if not cands:
            return {}
        m = self.aligner.scoring.match
        geoms = [
            self._candidate_jobs(plan, o, off) for plan, o, off in cands
        ]
        h0 = [plan.k * m for plan, _, _ in cands]
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(
                names.PAIRED_RESCUE_JOBS, "rescue candidates extended"
            ).inc(len(cands))

        def _run(jobs, side):
            if obs.enabled():
                obs.get_registry().counter(
                    names.PAIRED_RESCUE_WAVES, "rescue waves"
                ).inc()
            if engine is None:
                return [
                    self.rescuer.extend(q, t, h).result
                    for q, t, h in jobs
                ]
            results = dispatch(engine, jobs, side)
            return [
                self.rescuer.extend(q, t, h).result if r is DEGRADED else r
                for (q, t, h), r in zip(jobs, results)
            ]

        left_idx = [i for i, g in enumerate(geoms) if len(g[0])]
        left_results = _run(
            [(geoms[i][0], geoms[i][1], h0[i]) for i in left_idx],
            "rescue_left",
        )
        lefts: list[tuple] = [((0, 0), h, 0) for h in h0]
        for i, res in zip(left_idx, left_results):
            lefts[i] = _resolve_end(res, h0[i])

        right_idx = [i for i, g in enumerate(geoms) if len(g[2])]
        right_results = _run(
            [(geoms[i][2], geoms[i][3], lefts[i][1]) for i in right_idx],
            "rescue_right",
        )
        rights: list[tuple] = [
            ((0, 0), lefts[i][1], 0) for i in range(len(cands))
        ]
        for i, res in zip(right_idx, right_results):
            rights[i] = _resolve_end(res, lefts[i][1])

        extended = {}
        for i, (plan, o, off) in enumerate(cands):
            l_end, l_score, l_clip = lefts[i]
            r_end, score, r_clip = rights[i]
            extended[(id(plan), o, off)] = (
                score, o, off, l_end, l_score, l_clip, r_end, r_clip
            )
        return extended


    # -- flagging ---------------------------------------------------------------

    def _flag(
        self,
        rec: SamRecord,
        mate: SamRecord,
        proper: bool,
        first: bool,
    ) -> SamRecord:
        flag = rec.flag | FLAG_PAIRED
        flag |= FLAG_FIRST if first else FLAG_SECOND
        if proper:
            flag |= FLAG_PROPER
        if mate.is_unmapped:
            flag |= FLAG_MATE_UNMAPPED
        elif mate.is_reverse:
            flag |= FLAG_MATE_REVERSE
        tlen = 0
        if proper:
            left = min(rec.pos, mate.pos)
            right = max(
                rec.pos + Cigar.parse(rec.cigar).reference_length,
                mate.pos + Cigar.parse(mate.cigar).reference_length,
            )
            tlen = right - left
            if rec.pos > mate.pos or (
                rec.pos == mate.pos and rec.is_reverse
            ):
                tlen = -tlen
        return SamRecord(
            qname=rec.qname,
            flag=flag,
            rname=rec.rname,
            pos=rec.pos,
            mapq=rec.mapq,
            cigar=rec.cigar,
            seq=rec.seq,
            tags=rec.tags + (f"MP:i:{mate.pos + 1}", f"TL:i:{tlen}"),
        )


def _find_exact(window: np.ndarray, probe: np.ndarray) -> list[int]:
    """All exact occurrences of ``probe`` in ``window`` (numpy scan)."""
    k = len(probe)
    if len(window) < k:
        return []
    hits = window[: len(window) - k + 1] == probe[0]
    for d in range(1, k):
        hits &= window[d : len(window) - k + 1 + d] == probe[d]
    return [int(i) for i in np.flatnonzero(hits)]
