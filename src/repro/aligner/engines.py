"""Extension engines: the pluggable seed-extension kernels.

The Figure 13 experiment runs the same aligner with three kernels:

* :class:`FullBandEngine` — the ground truth (BWA-MEM's software
  full-band kernel);
* :class:`PlainBandedEngine` — a narrow band with *no* checks: the
  naive accelerator whose SAM output diverges (Figure 13's rising
  curve);
* :class:`SeedExEngine` — the narrow band with the SeedEx checks and
  host rerun: bit-equivalent to full band at every band setting
  (Figure 13's flat zero).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro import obs
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.aligner.cache import (
    DEFAULT_MAX_ENTRIES,
    ExtensionCache,
    job_key,
)
from repro.core.checker import CheckConfig
from repro.core.extender import SeedExtender
from repro.kernels import get_kernel
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


def _account(
    name: str, cells: int, jobs: int = 1, kernel: str | None = None
) -> None:
    """Per-engine counters in the global registry (when enabled)."""
    if obs.enabled():
        reg = obs.get_registry()
        reg.counter(
            names.ENGINE_EXTENSIONS, "extensions served", engine=name
        ).inc(jobs)
        reg.counter(
            names.ENGINE_CELLS, "DP cells filled", engine=name
        ).inc(cells)
        if kernel is not None and jobs:
            reg.counter(
                names.KERNEL_EXTENSIONS,
                "extension jobs per DP backend",
                kernel=kernel,
            ).inc(jobs)


class ExtensionEngine(Protocol):
    """Anything that can run one seed extension job."""

    name: str

    def extend(
        self, query: np.ndarray, target: np.ndarray, h0: int
    ) -> ExtensionResult:
        """Run one extension job and return its result."""
        ...


class FullBandEngine:
    """The reference software kernel: always the full band."""

    def __init__(
        self,
        scoring: AffineGap = BWA_MEM_SCORING,
        kernel=None,
    ) -> None:
        self.name = "full-band"
        self.scoring = scoring
        self.kernel = get_kernel(kernel)
        self.extensions = 0
        self.cells = 0

    def extend(self, query, target, h0):
        """Full-band extension: the ground-truth result."""
        self.extensions += 1
        res = self.kernel.extend(query, target, self.scoring, h0)
        self.cells += res.cells_computed
        _account(self.name, res.cells_computed, kernel=self.kernel.name)
        return res


class PlainBandedEngine:
    """A fixed narrow band with no optimality checks (unsound)."""

    def __init__(
        self,
        band: int,
        scoring: AffineGap = BWA_MEM_SCORING,
        kernel=None,
    ) -> None:
        if band < 1:
            raise ValueError("band must be at least 1")
        self.name = f"banded-w{band}"
        self.band = band
        self.scoring = scoring
        self.kernel = get_kernel(kernel)
        self.extensions = 0
        self.cells = 0

    def extend(self, query, target, h0):
        """Narrow-band extension with no optimality guarantee."""
        self.extensions += 1
        res = self.kernel.extend(
            query, target, self.scoring, h0, w=self.band
        )
        self.cells += res.cells_computed
        _account(self.name, res.cells_computed, kernel=self.kernel.name)
        return res


class BatchedEngine:
    """Wave-dispatched kernel: whole job batches in lockstep.

    The accelerator consumes thousands of independent extensions at a
    time (paper Section V-B); this engine is the software analogue.
    :meth:`extend_wave` pushes a whole wave of ``(query, target, h0)``
    jobs through the backend's batch kernel — the row-lockstep
    :mod:`repro.align.batchdp` on the scalar backend, the fused
    anti-diagonal :mod:`repro.kernels.wavefront` on the numpy one —
    with per-job results bit-equal to the scalar kernel
    (``banded.extend(..., prune=False)``), property-tested in
    ``tests/aligner/test_batched_engine.py`` and ``tests/kernels/``.

    With the default ``band=None`` every job runs the full band, so
    SAM output through this engine is byte-identical to
    :class:`FullBandEngine`; a fixed ``band`` makes it the batched
    analogue of :class:`PlainBandedEngine` (no checks — unsound).

    A bounded LRU :class:`~repro.aligner.cache.ExtensionCache` dedups
    byte-identical jobs (reads piling on one locus), both within one
    wave and across waves; ``cache_entries=0`` disables it.  The
    scalar :meth:`extend` path shares the same cache, so the engine
    still satisfies the :class:`ExtensionEngine` protocol when driven
    one job at a time (e.g. behind the resilience dispatcher).
    """

    def __init__(
        self,
        band: int | None = None,
        scoring: AffineGap = BWA_MEM_SCORING,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        kernel=None,
    ) -> None:
        if band is not None and band < 1:
            raise ValueError("band must be at least 1 (or None)")
        self.name = "batched-full" if band is None else f"batched-w{band}"
        self.band = band
        self.scoring = scoring
        self.kernel = get_kernel(kernel)
        self.cache = (
            ExtensionCache(cache_entries) if cache_entries else None
        )
        self.extensions = 0
        self.cells = 0

    def _cache_get(self, key) -> ExtensionResult | None:
        if self.cache is None:
            return None
        hit = self.cache.get(key)
        if obs.enabled():
            name = (
                names.PIPELINE_BATCH_CACHE_HITS
                if hit is not None
                else names.PIPELINE_BATCH_CACHE_MISSES
            )
            obs.get_registry().counter(
                name, "extension-result cache lookups"
            ).inc()
        return hit

    def extend(self, query, target, h0) -> ExtensionResult:
        """One job through the scalar kernel (cache-backed)."""
        self.extensions += 1
        key = job_key(query, target, h0, self.band)
        hit = self._cache_get(key)
        if hit is not None:
            _account(self.name, 0)
            return hit
        res = self.kernel.extend(
            query, target, self.scoring, h0, w=self.band
        )
        if self.cache is not None:
            self.cache.put(key, res)
        self.cells += res.cells_computed
        _account(self.name, res.cells_computed, kernel=self.kernel.name)
        return res

    def extend_wave(self, jobs) -> list[ExtensionResult]:
        """Run a wave of ``(query, target, h0)`` jobs in lockstep.

        Results come back in job order.  Duplicate jobs — equal query
        bytes, target bytes, ``h0`` — are computed once per wave and
        answered from the cache thereafter.
        """
        results: list[ExtensionResult | None] = [None] * len(jobs)
        pending: dict[tuple, list[int]] = {}
        for k, (query, target, h0) in enumerate(jobs):
            key = job_key(query, target, h0, self.band)
            hit = self._cache_get(key)
            if hit is not None:
                results[k] = hit
            else:
                pending.setdefault(key, []).append(k)
        self.extensions += len(jobs)
        if pending:
            unique = [jobs[owners[0]] for owners in pending.values()]
            with obs.span(names.SPAN_EXTEND_BATCH, jobs=len(unique)):
                computed = self.kernel.extend_batch(
                    [q for q, _, _ in unique],
                    [t for _, t, _ in unique],
                    [h0 for _, _, h0 in unique],
                    self.scoring,
                    w=self.band,
                )
            cells = 0
            for (key, owners), res in zip(pending.items(), computed):
                if self.cache is not None:
                    self.cache.put(key, res)
                cells += res.cells_computed
                for k in owners:
                    results[k] = res
            self.cells += cells
            _account(self.name, cells, jobs=0)
        if obs.enabled() and jobs:
            _account(
                self.name, 0, jobs=len(jobs), kernel=self.kernel.name
            )
        return results


class SeedExEngine:
    """Narrow band + SeedEx checks + full-band rerun on failure."""

    def __init__(
        self,
        band: int = 41,
        scoring: AffineGap = BWA_MEM_SCORING,
        config: CheckConfig | None = None,
        registry: MetricsRegistry | None = None,
        kernel=None,
    ) -> None:
        self.name = f"seedex-w{band}"
        self.band = band
        self._extender = SeedExtender(
            band=band,
            scoring=scoring,
            config=config,
            registry=registry,
            kernel=kernel,
        )

    @property
    def kernel(self):
        """The DP backend this engine's extender runs on."""
        return self._extender.kernel

    @property
    def scoring(self) -> AffineGap:
        """The affine-gap scheme this engine runs with."""
        return self._extender.scoring

    @property
    def stats(self):
        """Check-outcome accounting (passing rates, rerun counts)."""
        return self._extender.stats

    @property
    def extensions(self) -> int:
        """Extensions processed so far."""
        return self._extender.stats.total

    def extend(self, query, target, h0):
        """Guaranteed-optimal extension (checks + rerun)."""
        out = self._extender.extend(query, target, h0)
        _account(
            self.name,
            out.narrow_result.cells_computed,
            kernel=self.kernel.name,
        )
        return out.result


def make_resilient(
    engine: ExtensionEngine,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    max_retries: int = 3,
    timeout_s: float = 0.25,
    registry: MetricsRegistry | None = None,
    host_queue_capacity: int | None = None,
    fault_sites: tuple[str, ...] | None = None,
    sleep=None,
    breaker_threshold: int | None = None,
    breaker_probe_interval: int = 32,
):
    """Wrap ``engine`` in the chaos/resilience layer.

    With ``fault_rate == 0`` no injector is attached and the
    dispatcher is a measured no-op passthrough; with a positive rate
    the engine's datapath runs through the faultable I/O seams
    (:mod:`repro.faults`) and the retry → host-rerun → dead-letter
    ladder guarantees the result anyway.  Returns a
    :class:`~repro.faults.resilience.ResilientDispatcher`, which
    satisfies the :class:`ExtensionEngine` protocol.

    ``breaker_threshold`` (``None`` = no breaker) arms a
    :class:`~repro.durability.breaker.CircuitBreaker`: that many
    consecutive host fallbacks trip it open and jobs short-circuit to
    the host kernel, re-probing the accelerator every
    ``breaker_probe_interval`` jobs (backed off while it keeps
    failing).  See ``docs/durability.md``.
    """
    # Local import keeps the engine module importable without pulling
    # the faults package into every pipeline run.
    from repro.faults import (
        ChaosEngine,
        FaultInjector,
        ResilientDispatcher,
        RetryPolicy,
    )

    injector = None
    wrapped = engine
    if fault_rate > 0.0:
        injector = FaultInjector(
            rate=fault_rate, seed=fault_seed, sites=fault_sites
        )
        wrapped = ChaosEngine(engine, injector)
    breaker = None
    if breaker_threshold is not None:
        from repro.durability.breaker import BreakerPolicy, CircuitBreaker

        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=breaker_threshold,
                probe_interval=breaker_probe_interval,
            ),
            registry=registry,
        )
    kwargs = {} if sleep is None else {"sleep": sleep}
    return ResilientDispatcher(
        wrapped,
        policy=RetryPolicy(max_retries=max_retries, timeout_s=timeout_s),
        injector=injector,
        registry=registry,
        host_queue_capacity=host_queue_capacity,
        seed=fault_seed,
        breaker=breaker,
        **kwargs,
    )
