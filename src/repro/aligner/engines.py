"""Extension engines: the pluggable seed-extension kernels.

The Figure 13 experiment runs the same aligner with three kernels:

* :class:`FullBandEngine` — the ground truth (BWA-MEM's software
  full-band kernel);
* :class:`PlainBandedEngine` — a narrow band with *no* checks: the
  naive accelerator whose SAM output diverges (Figure 13's rising
  curve);
* :class:`SeedExEngine` — the narrow band with the SeedEx checks and
  host rerun: bit-equivalent to full band at every band setting
  (Figure 13's flat zero).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro import obs
from repro.align import banded
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import CheckConfig
from repro.core.extender import SeedExtender
from repro.obs import names
from repro.obs.metrics import MetricsRegistry


def _account(name: str, cells: int) -> None:
    """Per-engine counters in the global registry (when enabled)."""
    if obs.enabled():
        reg = obs.get_registry()
        reg.counter(
            names.ENGINE_EXTENSIONS, "extensions served", engine=name
        ).inc()
        reg.counter(
            names.ENGINE_CELLS, "DP cells filled", engine=name
        ).inc(cells)


class ExtensionEngine(Protocol):
    """Anything that can run one seed extension job."""

    name: str

    def extend(
        self, query: np.ndarray, target: np.ndarray, h0: int
    ) -> ExtensionResult:
        """Run one extension job and return its result."""
        ...


class FullBandEngine:
    """The reference software kernel: always the full band."""

    def __init__(self, scoring: AffineGap = BWA_MEM_SCORING) -> None:
        self.name = "full-band"
        self.scoring = scoring
        self.extensions = 0
        self.cells = 0

    def extend(self, query, target, h0):
        """Full-band extension: the ground-truth result."""
        self.extensions += 1
        res = banded.extend(query, target, self.scoring, h0)
        self.cells += res.cells_computed
        _account(self.name, res.cells_computed)
        return res


class PlainBandedEngine:
    """A fixed narrow band with no optimality checks (unsound)."""

    def __init__(
        self, band: int, scoring: AffineGap = BWA_MEM_SCORING
    ) -> None:
        if band < 1:
            raise ValueError("band must be at least 1")
        self.name = f"banded-w{band}"
        self.band = band
        self.scoring = scoring
        self.extensions = 0
        self.cells = 0

    def extend(self, query, target, h0):
        """Narrow-band extension with no optimality guarantee."""
        self.extensions += 1
        res = banded.extend(query, target, self.scoring, h0, w=self.band)
        self.cells += res.cells_computed
        _account(self.name, res.cells_computed)
        return res


class SeedExEngine:
    """Narrow band + SeedEx checks + full-band rerun on failure."""

    def __init__(
        self,
        band: int = 41,
        scoring: AffineGap = BWA_MEM_SCORING,
        config: CheckConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.name = f"seedex-w{band}"
        self.band = band
        self._extender = SeedExtender(
            band=band, scoring=scoring, config=config, registry=registry
        )

    @property
    def scoring(self) -> AffineGap:
        """The affine-gap scheme this engine runs with."""
        return self._extender.scoring

    @property
    def stats(self):
        """Check-outcome accounting (passing rates, rerun counts)."""
        return self._extender.stats

    @property
    def extensions(self) -> int:
        """Extensions processed so far."""
        return self._extender.stats.total

    def extend(self, query, target, h0):
        """Guaranteed-optimal extension (checks + rerun)."""
        out = self._extender.extend(query, target, h0)
        _account(self.name, out.narrow_result.cells_computed)
        return out.result


def make_resilient(
    engine: ExtensionEngine,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    max_retries: int = 3,
    timeout_s: float = 0.25,
    registry: MetricsRegistry | None = None,
    host_queue_capacity: int | None = None,
    fault_sites: tuple[str, ...] | None = None,
    sleep=None,
):
    """Wrap ``engine`` in the chaos/resilience layer.

    With ``fault_rate == 0`` no injector is attached and the
    dispatcher is a measured no-op passthrough; with a positive rate
    the engine's datapath runs through the faultable I/O seams
    (:mod:`repro.faults`) and the retry → host-rerun → dead-letter
    ladder guarantees the result anyway.  Returns a
    :class:`~repro.faults.resilience.ResilientDispatcher`, which
    satisfies the :class:`ExtensionEngine` protocol.
    """
    # Local import keeps the engine module importable without pulling
    # the faults package into every pipeline run.
    from repro.faults import (
        ChaosEngine,
        FaultInjector,
        ResilientDispatcher,
        RetryPolicy,
    )

    injector = None
    wrapped = engine
    if fault_rate > 0.0:
        injector = FaultInjector(
            rate=fault_rate, seed=fault_seed, sites=fault_sites
        )
        wrapped = ChaosEngine(engine, injector)
    kwargs = {} if sleep is None else {"sleep": sleep}
    return ResilientDispatcher(
        wrapped,
        policy=RetryPolicy(max_retries=max_retries, timeout_s=timeout_s),
        injector=injector,
        registry=registry,
        host_queue_capacity=host_queue_capacity,
        seed=fault_seed,
        **kwargs,
    )
