"""Deferred-extension wave scheduling: batch across reads, not rows.

The scalar pipeline calls ``engine.extend()`` one chain at a time, so
the 20-50x lockstep kernel (:mod:`repro.align.batchdp`) never sees a
real batch.  This scheduler restores the accelerator's working set
(paper Section V-B): it walks seed/chain for a whole *window* of
reads, collects every left extension into one wave, dispatches the
wave in lockstep, resolves the left endpoints, then dispatches every
surviving right extension as a second wave — preserving BWA-MEM's
``h0`` threading, where the right job's initial score is the left
job's result.

Semantics are byte-identical to the scalar path (the differential
suite in ``tests/aligner/test_differential.py`` holds SAM output
fixed across scalar/batched × worker counts):

* job geometry comes from the same :class:`~repro.aligner.pipeline.Aligner`
  helpers the scalar path uses;
* a chain whose left extension dies (``l_end == (0, 0)`` with no
  score) is dropped before the right wave, exactly as the scalar code
  short-circuits;
* candidates accumulate in scalar order — forward-orientation chains
  then reverse, in chain-filter order — so tie-breaking in the final
  sort is unchanged;
* when the engine cannot take a wave (e.g. it is wrapped in the
  chaos/resilience dispatcher, which is scalar by design), jobs fall
  back to per-job dispatch and a dead-lettered job degrades **alone**
  — its chain, not its whole wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.align.fullmatrix import fill_extension_batch
from repro.aligner.pipeline import (
    DEGRADED,
    AlignmentCandidate,
    _resolve_end,
)
from repro.faults.errors import DeadLetterError
from repro.genome.sam import SamRecord
from repro.genome.sequence import reverse_complement
from repro.kernels.striped import shape_class
from repro.obs import names
from repro.seeding.chaining import chain_seeds, filter_chains

DEFAULT_BATCH_SIZE = 4096
"""Reads per scheduling window (the paper's batch geometry)."""


@dataclass
class _ReadState:
    """Per-read bookkeeping while its chains move through the waves."""

    name: str
    codes: np.ndarray
    n_seeds: int = 0
    n_chains: int = 0
    n_degraded: int = 0
    chains: "list[_ChainState]" = field(default_factory=list)


@dataclass
class _ChainState:
    """One chain's extension state across the left and right waves."""

    read: _ReadState
    reverse: bool
    query: np.ndarray
    chain: object
    lq: np.ndarray
    lt: np.ndarray
    h0: int
    l_end: tuple[int, int] = (0, 0)
    l_score: int = 0
    clip_left: int = 0
    rq: np.ndarray | None = None
    rt: np.ndarray | None = None
    r_end: tuple[int, int] = (0, 0)
    final: int = 0
    clip_right: int = 0
    dropped: bool = False
    degraded: bool = False

    @property
    def alive(self) -> bool:
        """Still a candidate: neither dropped nor degraded."""
        return not (self.dropped or self.degraded)


def _dispatch_wave(engine, jobs: list[tuple], side: str) -> list:
    """Run one wave of jobs; returns a result (or ``DEGRADED``) per job.

    Engines exposing ``extend_wave`` get the whole wave in one call
    (the lockstep path); anything else — including the resilience
    dispatcher — is driven job by job, where a ``DeadLetterError``
    degrades only the job that raised it.
    """
    if not jobs:
        return []
    wave = getattr(engine, "extend_wave", None)
    with obs.span(names.SPAN_PIPELINE_WAVE, side=side, jobs=len(jobs)):
        if wave is not None:
            results = wave(jobs)
        else:
            results = []
            for query, target, h0 in jobs:
                try:
                    results.append(engine.extend(query, target, h0))
                except DeadLetterError:
                    results.append(DEGRADED)
    if obs.enabled():
        reg = obs.get_registry()
        reg.counter(
            names.PIPELINE_BATCH_WAVES, "extension waves", side=side
        ).inc()
        reg.counter(
            names.PIPELINE_BATCH_JOBS, "wave jobs", side=side
        ).inc(len(jobs))
        reg.histogram(
            names.PIPELINE_BATCH_WAVE_JOBS, "jobs per wave", side=side
        ).observe(len(jobs))
        # Bucket density: how many striped-kernel shape classes this
        # wave spans.  Window-sized waves keep this small (a handful
        # of geometric length classes), which is what lets the striped
        # backend pack the wave into dense lockstep sweep groups.
        classes = {
            (shape_class(len(t)), shape_class(len(q)))
            for q, t, _ in jobs
        }
        reg.histogram(
            names.PIPELINE_BATCH_WAVE_CLASSES,
            "distinct shape classes per wave",
            side=side,
        ).observe(len(classes))
        degraded = sum(1 for r in results if r is DEGRADED)
        if degraded:
            reg.counter(
                names.PIPELINE_BATCH_JOBS_DEGRADED,
                "wave jobs dead-lettered individually",
            ).inc(degraded)
    return results


def _collect_chains(aligner, window) -> tuple[list[_ReadState], list[_ChainState]]:
    """Seed and chain every read of the window; build chain states."""
    reads: list[_ReadState] = []
    chains: list[_ChainState] = []
    for name, codes in window:
        codes = np.asarray(codes, dtype=np.uint8)
        state = _ReadState(name=name, codes=codes)
        reads.append(state)
        for reverse in (False, True):
            query = reverse_complement(codes) if reverse else codes
            with obs.span(names.SPAN_ALIGNER_SEED):
                seeds = aligner._seeds(query)
            with obs.span(names.SPAN_ALIGNER_CHAIN):
                kept = filter_chains(
                    chain_seeds(seeds), max_chains=aligner.max_chains
                )
            state.n_seeds += len(seeds)
            state.n_chains += len(kept)
            for chain in kept:
                lq, lt, h0 = aligner._left_job(query, chain)
                cs = _ChainState(
                    read=state,
                    reverse=reverse,
                    query=query,
                    chain=chain,
                    lq=lq,
                    lt=lt,
                    h0=h0,
                )
                state.chains.append(cs)
                chains.append(cs)
    return reads, chains


def _run_left_wave(aligner, chains: list[_ChainState]) -> None:
    """Dispatch all left extensions; resolve endpoints and drops."""
    pending = [cs for cs in chains if len(cs.lq)]
    results = _dispatch_wave(
        aligner.engine, [(cs.lq, cs.lt, cs.h0) for cs in pending], "left"
    )
    for cs, res in zip(pending, results):
        if res is DEGRADED:
            cs.degraded = True
            continue
        cs.l_end, cs.l_score, cs.clip_left = _resolve_end(res, cs.h0)
        if cs.l_end == (0, 0) and cs.l_score <= 0:
            cs.dropped = True
    for cs in chains:
        if not len(cs.lq):
            cs.l_end, cs.l_score, cs.clip_left = (0, 0), cs.h0, 0


def _run_right_wave(aligner, chains: list[_ChainState]) -> None:
    """Dispatch all surviving right extensions (``h0`` = left score)."""
    pending: list[_ChainState] = []
    for cs in chains:
        if not cs.alive:
            continue
        cs.rq, cs.rt = aligner._right_job(cs.query, cs.chain)
        if len(cs.rq):
            pending.append(cs)
        else:
            cs.r_end, cs.final, cs.clip_right = (0, 0), cs.l_score, 0
    results = _dispatch_wave(
        aligner.engine,
        [(cs.rq, cs.rt, cs.l_score) for cs in pending],
        "right",
    )
    for cs, res in zip(pending, results):
        if res is DEGRADED:
            cs.degraded = True
            continue
        cs.r_end, cs.final, cs.clip_right = _resolve_end(res, cs.l_score)


def _finalize_window(aligner, reads: list[_ReadState]) -> list[SamRecord]:
    """Best-candidate selection, traceback wave, SAM records in order.

    Selection runs per read exactly as the scalar path does; then the
    winners' dense traceback matrices — the host-side step the paper
    runs once per read — are filled together in one lockstep wave
    (:func:`repro.align.fullmatrix.fill_extension_batch`) and each
    winner's path is walked out of its own slice.
    """
    records: list[SamRecord | None] = []
    winners: list[tuple[int, AlignmentCandidate, int]] = []
    for state in reads:
        candidates: list[AlignmentCandidate] = []
        for cs in state.chains:
            if cs.degraded:
                state.n_degraded += 1
            elif not cs.dropped:
                candidates.append(
                    aligner._make_candidate(
                        cs.chain,
                        cs.reverse,
                        cs.lq,
                        cs.lt,
                        cs.h0,
                        cs.l_end,
                        cs.l_score,
                        cs.clip_left,
                        cs.rq,
                        cs.rt,
                        cs.r_end,
                        cs.final,
                        cs.clip_right,
                    )
                )
        picked = aligner._select_candidate(
            state.codes,
            state.name,
            candidates,
            state.n_seeds,
            state.n_chains,
            state.n_degraded,
        )
        if isinstance(picked, SamRecord):
            records.append(picked)
        else:
            best, mapq = picked
            winners.append((len(records), best, mapq))
            records.append(None)

    # One dense-fill job per winning extension that needs a walk.
    jobs: list[tuple[np.ndarray, np.ndarray, int]] = []
    slots: list[tuple[int, str]] = []
    for w, (_, best, _) in enumerate(winners):
        if best.left_end != (0, 0):
            jobs.append((best.left_query, best.left_target, best.left_h0))
            slots.append((w, "left"))
        if best.right_end != (0, 0):
            jobs.append(
                (best.right_query, best.right_target, best.right_h0)
            )
            slots.append((w, "right"))
    mats: list[dict[str, object]] = [{} for _ in winners]
    if jobs:
        with obs.span(
            names.SPAN_PIPELINE_WAVE, side="traceback", jobs=len(jobs)
        ):
            filled = fill_extension_batch(
                [q for q, _, _ in jobs],
                [t for _, t, _ in jobs],
                aligner.scoring,
                [h0 for _, _, h0 in jobs],
            )
        if obs.enabled():
            reg = obs.get_registry()
            reg.counter(
                names.PIPELINE_BATCH_WAVES, "extension waves", side="traceback"
            ).inc()
            reg.counter(
                names.PIPELINE_BATCH_JOBS, "wave jobs", side="traceback"
            ).inc(len(jobs))
            reg.histogram(
                names.PIPELINE_BATCH_WAVE_JOBS, "jobs per wave", side="traceback"
            ).observe(len(jobs))
        for (w, side), dense in zip(slots, filled):
            mats[w][side] = dense

    for w, (slot, best, mapq) in enumerate(winners):
        state = reads[slot]
        with obs.span(names.SPAN_ALIGNER_TRACEBACK):
            cigar = aligner._traceback(
                best,
                left_mats=mats[w].get("left"),
                right_mats=mats[w].get("right"),
            )
        records[slot] = aligner._record(
            state.codes, state.name, best, mapq, cigar
        )
    return records


def align_window(aligner, window, on_record=None) -> list[SamRecord]:
    """Align one window of ``(name, codes)`` reads via two waves.

    ``on_record``, when given, is called as ``on_record(i, record)``
    for each finished read in window order the moment the window's
    traceback wave resolves — the streaming hook ``repro serve`` uses
    to answer each request without waiting for a whole run.  The
    callback must not mutate the aligner; records are computed before
    the first call, so output is identical with or without it.
    """
    with obs.span(names.SPAN_PIPELINE_WINDOW, reads=len(window)):
        reads, chains = _collect_chains(aligner, window)
        _run_left_wave(aligner, chains)
        _run_right_wave(aligner, chains)
        records = _finalize_window(aligner, reads)
    if on_record is not None:
        for i, record in enumerate(records):
            on_record(i, record)
    return records


def align_batched(
    aligner,
    reads,
    batch_size: int = DEFAULT_BATCH_SIZE,
    progress=None,
    on_record=None,
) -> list[SamRecord]:
    """Align ``reads`` window by window through the wave scheduler.

    ``reads`` may be ``(name, codes)`` pairs or ``SimulatedRead``-like
    objects.  Records come back in input order, byte-identical to
    ``aligner.align(reads)``.  ``progress``, when given, is called
    after each completed window as ``progress(window_index, done,
    total)``; ``on_record(global_index, record)`` fires per read as
    its window finishes.  Neither callback may mutate the aligner (the
    scheduler's output stays byte-identical whether callbacks are
    attached or not).
    """
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    normalized = [
        (read.name, read.codes) if hasattr(read, "codes") else read
        for read in reads
    ]
    records: list[SamRecord] = []
    for index, start in enumerate(range(0, len(normalized), batch_size)):
        base = len(records)
        window_cb = None
        if on_record is not None:
            window_cb = lambda i, rec, _b=base: on_record(_b + i, rec)
        records.extend(
            align_window(
                aligner,
                normalized[start : start + batch_size],
                on_record=window_cb,
            )
        )
        if progress is not None:
            progress(index, len(records), len(normalized))
    return records
