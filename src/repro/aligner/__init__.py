"""The end-to-end BWA-MEM-style aligner with pluggable extension."""

from repro.aligner.cache import ExtensionCache
from repro.aligner.engines import (
    BatchedEngine,
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.longread import LongReadAligner
from repro.aligner.paired import InsertSizeModel, PairedAligner, ReadPair
from repro.aligner.parallel import (
    EngineSpec,
    StartMethodError,
    align_sharded,
)
from repro.aligner.pipeline import Aligner

__all__ = [
    "Aligner",
    "BatchedEngine",
    "EngineSpec",
    "ExtensionCache",
    "FullBandEngine",
    "InsertSizeModel",
    "LongReadAligner",
    "PairedAligner",
    "PlainBandedEngine",
    "ReadPair",
    "SeedExEngine",
    "StartMethodError",
    "align_sharded",
]
