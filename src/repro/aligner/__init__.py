"""The end-to-end BWA-MEM-style aligner with pluggable extension."""

from repro.aligner.engines import (
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.longread import LongReadAligner
from repro.aligner.paired import InsertSizeModel, PairedAligner, ReadPair
from repro.aligner.pipeline import Aligner

__all__ = [
    "Aligner",
    "FullBandEngine",
    "InsertSizeModel",
    "LongReadAligner",
    "PairedAligner",
    "PlainBandedEngine",
    "ReadPair",
    "SeedExEngine",
]
