"""FASTA and FASTQ parsing and writing.

The pipeline's on-disk interchange formats: references travel as FASTA
(the paper indexes GRCh38 from the UCSC browser), reads as FASTQ (the
paper streams ERR194147).  Both parsers are deliberately strict — a
malformed record raises instead of silently truncating a genome.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO


@dataclass(frozen=True)
class FastaRecord:
    name: str
    sequence: str


@dataclass(frozen=True)
class FastqRecord:
    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length "
                f"{len(self.sequence)} for read {self.name!r}"
            )


def parse_fasta(handle: TextIO) -> Iterator[FastaRecord]:
    """Yield records from a FASTA stream (multi-line sequences ok)."""
    name: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(handle, 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks))
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError(f"empty FASTA header at line {lineno}")
            chunks = []
        else:
            if name is None:
                raise ValueError(
                    f"sequence before any FASTA header at line {lineno}"
                )
            chunks.append(line)
    if name is not None:
        yield FastaRecord(name, "".join(chunks))


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Read all records of a FASTA file."""
    with open(path) as handle:
        return list(parse_fasta(handle))


def write_fasta(
    handle: TextIO, records: Iterable[FastaRecord], width: int = 70
) -> None:
    """Write FASTA with ``width``-column line wrapping."""
    for rec in records:
        handle.write(f">{rec.name}\n")
        seq = rec.sequence
        for i in range(0, len(seq), width):
            handle.write(seq[i : i + width] + "\n")


def parse_fastq(handle: TextIO) -> Iterator[FastqRecord]:
    """Yield records from a FASTQ stream (4-line records)."""
    while True:
        header = handle.readline()
        if not header:
            return
        header = header.rstrip("\n")
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"bad FASTQ header: {header!r}")
        seq = handle.readline().rstrip("\n")
        plus = handle.readline().rstrip("\n")
        qual = handle.readline().rstrip("\n")
        if not plus.startswith("+"):
            raise ValueError(f"bad FASTQ separator for {header!r}")
        if not qual and seq:
            raise ValueError(f"truncated FASTQ record {header!r}")
        yield FastqRecord(header[1:].split()[0], seq, qual)


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Read all records of a FASTQ file."""
    with open(path) as handle:
        return list(parse_fastq(handle))


def write_fastq(handle: TextIO, records: Iterable[FastqRecord]) -> None:
    """Write records as 4-line FASTQ."""
    for rec in records:
        handle.write(f"@{rec.name}\n{rec.sequence}\n+\n{rec.quality}\n")
