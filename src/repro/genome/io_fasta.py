"""FASTA and FASTQ parsing and writing.

The pipeline's on-disk interchange formats: references travel as FASTA
(the paper indexes GRCh38 from the UCSC browser), reads as FASTQ (the
paper streams ERR194147).  Both parsers are strict by default — a
malformed record raises a typed :class:`MalformedRecordError` carrying
the file, line, and reason instead of silently truncating a genome.

The FASTQ parser can also run in *quarantine* mode (the CLI's
``--on-bad-record quarantine``): malformed records are reported to a
callback, the stream resyncs at the next plausible record header, and
parsing continues — one corrupt record in a multi-gigabyte FASTQ then
costs one quarantined entry, not the whole run.  See
``docs/durability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, TextIO

ON_BAD_FAIL = "fail"
ON_BAD_QUARANTINE = "quarantine"
ON_BAD_POLICIES = (ON_BAD_FAIL, ON_BAD_QUARANTINE)
"""Accepted ``--on-bad-record`` policies."""


class MalformedRecordError(ValueError):
    """A FASTA/FASTQ record the parser refused, with its location.

    ``path`` is ``None`` when parsing an anonymous stream; ``line`` is
    the 1-based line number of the offending record's first bad line.
    """

    def __init__(
        self, reason: str, *, path: str | None = None, line: int = 0
    ) -> None:
        self.reason = reason
        self.path = path
        self.line = line
        where = f"{path or '<stream>'}:{line}"
        super().__init__(f"{where}: {reason}")


@dataclass(frozen=True)
class FastaRecord:
    name: str
    sequence: str


@dataclass(frozen=True)
class FastqRecord:
    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length "
                f"{len(self.sequence)} for read {self.name!r}"
            )


def parse_fasta(
    handle: TextIO, path: str | None = None
) -> Iterator[FastaRecord]:
    """Yield records from a FASTA stream (multi-line sequences ok)."""
    name: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(handle, 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks))
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise MalformedRecordError(
                    "empty FASTA header", path=path, line=lineno
                )
            chunks = []
        else:
            if name is None:
                raise MalformedRecordError(
                    "sequence before any FASTA header",
                    path=path,
                    line=lineno,
                )
            chunks.append(line)
    if name is not None:
        yield FastaRecord(name, "".join(chunks))


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Read all records of a FASTA file."""
    with open(path) as handle:
        return list(parse_fasta(handle, path=str(path)))


def write_fasta(
    handle: TextIO, records: Iterable[FastaRecord], width: int = 70
) -> None:
    """Write FASTA with ``width``-column line wrapping."""
    for rec in records:
        handle.write(f">{rec.name}\n")
        seq = rec.sequence
        for i in range(0, len(seq), width):
            handle.write(seq[i : i + width] + "\n")


class _LineReader:
    """Line iterator over a text stream with pushback and numbering.

    The quarantine-mode FASTQ parser needs look-ahead (to tell a real
    record header from a quality line that merely starts with ``@``)
    and accurate line numbers for error reports; this tiny reader
    provides both without requiring a seekable stream.
    """

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle
        self._pushed: list[str] = []
        self.lineno = 0

    def next(self) -> str | None:
        """The next line (trailing newline kept); ``None`` at EOF."""
        if self._pushed:
            self.lineno += 1
            return self._pushed.pop()
        line = self._handle.readline()
        if not line:
            return None
        self.lineno += 1
        return line

    def push(self, line: str) -> None:
        """Push one line back; the next :meth:`next` returns it."""
        self._pushed.append(line)
        self.lineno -= 1


def parse_fastq(
    handle: TextIO,
    path: str | None = None,
    on_bad: Callable[[MalformedRecordError], None] | None = None,
) -> Iterator[FastqRecord]:
    """Yield records from a FASTQ stream (4-line records).

    Strict by default: a malformed record raises
    :class:`MalformedRecordError`.  With ``on_bad`` set, the error is
    passed to the callback instead, the stream resyncs at the next
    plausible record header (an ``@`` line with a ``+`` separator two
    lines later — not a quality line that merely begins with ``@``),
    and parsing continues.
    """
    lines = _LineReader(handle)
    consumed: list[str] = []  # raw body lines of the record in flight

    def take() -> str:
        line = lines.next()
        if line is None:
            return ""
        consumed.append(line)
        return line.rstrip("\n")

    while True:
        raw = lines.next()
        if raw is None:
            return
        header = raw.rstrip("\n")
        if not header:
            continue
        start = lines.lineno
        consumed.clear()
        try:
            if not header.startswith("@"):
                raise MalformedRecordError(
                    f"bad FASTQ header: {header!r}", path=path, line=start
                )
            seq = take()
            plus = take()
            qual = take()
            if not plus.startswith("+"):
                raise MalformedRecordError(
                    f"bad FASTQ separator for {header!r}",
                    path=path,
                    line=start,
                )
            if not qual and seq:
                raise MalformedRecordError(
                    f"truncated FASTQ record {header!r}",
                    path=path,
                    line=start,
                )
            if len(seq) != len(qual):
                raise MalformedRecordError(
                    f"quality length {len(qual)} != sequence length "
                    f"{len(seq)} for {header!r}",
                    path=path,
                    line=start,
                )
        except MalformedRecordError as exc:
            if on_bad is None:
                raise
            on_bad(exc)
            # The bad record's body lines may hide the next record's
            # header (e.g. a missing separator shifts everything up
            # one line) — hand them back so resync can find it.
            for line in reversed(consumed):
                lines.push(line)
            _resync(lines)
            continue
        yield FastqRecord(header[1:].split()[0], seq, qual)


def _resync(lines: _LineReader) -> None:
    """Skip forward to the next plausible FASTQ record header.

    A line qualifies when it starts with ``@`` and the line two ahead
    starts with ``+`` (or the stream ends first — trailing garbage is
    then reported as one final bad record rather than silently eaten).
    The qualifying header and its look-ahead are pushed back so the
    parser re-reads them normally.
    """
    while True:
        line = lines.next()
        if line is None:
            return
        if not line.startswith("@"):
            continue
        peek1 = lines.next()
        peek2 = lines.next()
        if peek2 is None or peek2.startswith("+"):
            for item in (peek2, peek1, line):
                if item is not None:
                    lines.push(item)
            return
        # Not a record start (likely a quality line); re-examine the
        # look-ahead lines as candidates themselves.
        lines.push(peek2)
        lines.push(peek1)


def read_fastq(
    path: str | Path,
    on_bad: Callable[[MalformedRecordError], None] | None = None,
) -> list[FastqRecord]:
    """Read all records of a FASTQ file.

    ``on_bad`` enables quarantine-mode parsing: malformed records are
    reported to the callback and skipped (see :func:`parse_fastq`).
    """
    with open(path) as handle:
        return list(parse_fastq(handle, path=str(path), on_bad=on_bad))


def write_fastq(handle: TextIO, records: Iterable[FastqRecord]) -> None:
    """Write records as 4-line FASTQ."""
    for rec in records:
        handle.write(f"@{rec.name}\n{rec.sequence}\n+\n{rec.quality}\n")
