"""SAM records: the aligner's output format.

The validation experiment (paper Figure 13) counts SAM entries that
differ between a banded run and the full-band baseline, so records
need a canonical, comparable text form.  Only the subset of the SAM
spec the pipeline emits is implemented; positions are 1-based in text
per the spec and 0-based in the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TextIO

FLAG_REVERSE = 0x10
FLAG_UNMAPPED = 0x4
FLAG_SECONDARY = 0x100


@dataclass(frozen=True)
class SamRecord:
    """One alignment line.  ``pos`` is 0-based; -1 when unmapped."""

    qname: str
    flag: int
    rname: str
    pos: int
    mapq: int
    cigar: str
    seq: str
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.pos < -1:
            raise ValueError("pos must be >= -1")
        if not 0 <= self.mapq <= 255:
            raise ValueError("mapq must be in [0, 255]")

    @property
    def is_unmapped(self) -> bool:
        """Whether the unmapped flag is set."""
        return bool(self.flag & FLAG_UNMAPPED)

    @property
    def is_reverse(self) -> bool:
        """Whether the reverse-strand flag is set."""
        return bool(self.flag & FLAG_REVERSE)

    def to_line(self) -> str:
        """Render the record as one SAM text line (1-based pos)."""
        fields = [
            self.qname,
            str(self.flag),
            self.rname if not self.is_unmapped else "*",
            str(self.pos + 1),
            str(self.mapq),
            self.cigar if not self.is_unmapped else "*",
            "*",
            "0",
            "0",
            self.seq,
            "*",
        ]
        fields.extend(self.tags)
        return "\t".join(fields)

    @classmethod
    def unmapped(
        cls, qname: str, seq: str, tags: tuple[str, ...] = ()
    ) -> "SamRecord":
        """An unmapped record; ``tags`` can carry a reason (XF:Z:…)."""
        return cls(
            qname=qname,
            flag=FLAG_UNMAPPED,
            rname="*",
            pos=-1,
            mapq=0,
            cigar="*",
            seq=seq,
            tags=tags,
        )

    @classmethod
    def from_line(cls, line: str) -> "SamRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) < 11:
            raise ValueError(f"SAM line has {len(parts)} fields, need 11")
        return cls(
            qname=parts[0],
            flag=int(parts[1]),
            rname=parts[2],
            pos=int(parts[3]) - 1,
            mapq=int(parts[4]),
            cigar=parts[5],
            seq=parts[9],
            tags=tuple(parts[11:]),
        )


def write_header(
    handle: TextIO,
    reference_name: str,
    reference_length: int,
    program_tags: tuple[str, ...] = (),
) -> None:
    """Write the minimal single-reference SAM header.

    Factored out of :func:`write_sam` so the durability layer can
    stitch journaled body segments under the byte-identical header.
    ``program_tags`` appends extra fields to the ``@PG`` line (the CLI
    records the active kernel backend there); alignment lines never
    depend on them, so stripping ``@PG`` recovers byte-comparable
    bodies across configurations.
    """
    handle.write("@HD\tVN:1.6\tSO:unknown\n")
    handle.write(f"@SQ\tSN:{reference_name}\tLN:{reference_length}\n")
    pg = "@PG\tID:repro-seedex\tPN:repro-seedex"
    for tag in program_tags:
        pg += f"\t{tag}"
    handle.write(pg + "\n")


def write_sam(
    handle: TextIO,
    records: Iterable[SamRecord],
    reference_name: str,
    reference_length: int,
    program_tags: tuple[str, ...] = (),
) -> None:
    """Write a single-reference SAM file with a minimal header."""
    write_header(
        handle, reference_name, reference_length,
        program_tags=program_tags,
    )
    for rec in records:
        handle.write(rec.to_line() + "\n")


def diff_records(
    a: Iterable[SamRecord], b: Iterable[SamRecord]
) -> int:
    """Number of positionally-paired records whose lines differ.

    This is Figure 13's metric: count SAM entries that change when the
    extension kernel changes.  Inputs must be same-length and in the
    same read order.
    """
    a = list(a)
    b = list(b)
    if len(a) != len(b):
        raise ValueError("record streams differ in length")
    return sum(
        1 for ra, rb in zip(a, b) if ra.to_line() != rb.to_line()
    )
