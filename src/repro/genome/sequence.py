"""DNA sequence encoding and manipulation.

SeedEx feeds the FPGA 3-bit encoded base pairs (paper Section IV-A) and
stores the reference 2-bit encoded in FPGA DRAM (Section VI).  This
module provides both encodings plus the usual sequence utilities.

Base codes: ``A=0, C=1, G=2, T=3`` and ``N=4`` (ambiguous).  The 2-bit
encoding cannot represent ``N``; callers must mask or reject ambiguous
bases before packing.
"""

from __future__ import annotations

import numpy as np

BASES = "ACGT"
AMBIGUOUS_CODE = 4
"""Code for 'N'; never matches anything, including itself."""

_ENCODE = np.full(256, -1, dtype=np.int8)
for _i, _b in enumerate(BASES):
    _ENCODE[ord(_b)] = _i
    _ENCODE[ord(_b.lower())] = _i
_ENCODE[ord("N")] = AMBIGUOUS_CODE
_ENCODE[ord("n")] = AMBIGUOUS_CODE

_DECODE = np.array(list(BASES + "N"))

_COMPLEMENT = np.array([3, 2, 1, 0, AMBIGUOUS_CODE], dtype=np.uint8)


def encode(seq: str) -> np.ndarray:
    """Encode a DNA string into base codes (uint8 array).

    Raises ``ValueError`` on characters outside ``ACGTNacgtn``.
    """
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE[raw]
    if (codes < 0).any():
        bad = seq[int(np.argmax(codes < 0))]
        raise ValueError(f"invalid DNA character: {bad!r}")
    return codes.astype(np.uint8)


def decode(codes: np.ndarray) -> str:
    """Decode base codes back into a DNA string."""
    codes = np.asarray(codes)
    if codes.size and (codes.max(initial=0) > AMBIGUOUS_CODE):
        raise ValueError("base code out of range")
    return "".join(_DECODE[codes])


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement an encoded sequence (N maps to N)."""
    return _COMPLEMENT[np.asarray(codes, dtype=np.uint8)][::-1]


def reverse_complement_str(seq: str) -> str:
    """Reverse-complement a DNA string."""
    return decode(reverse_complement(encode(seq)))


def pack_2bit(codes: np.ndarray) -> np.ndarray:
    """Pack base codes into the 2-bit format stored in FPGA DRAM.

    Four bases per byte, first base in the low bits.  Ambiguous bases
    are rejected because 2 bits cannot represent them.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) >= AMBIGUOUS_CODE:
        raise ValueError("cannot 2-bit pack ambiguous (N) bases")
    padded = np.zeros((codes.size + 3) // 4 * 4, dtype=np.uint8)
    padded[: codes.size] = codes
    quads = padded.reshape(-1, 4)
    return (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)


def unpack_2bit(packed: np.ndarray, length: int) -> np.ndarray:
    """Unpack :func:`pack_2bit` output back into ``length`` base codes."""
    packed = np.asarray(packed, dtype=np.uint8)
    if length > packed.size * 4:
        raise ValueError("length exceeds packed capacity")
    out = np.empty(packed.size * 4, dtype=np.uint8)
    out[0::4] = packed & 3
    out[1::4] = (packed >> 2) & 3
    out[2::4] = (packed >> 4) & 3
    out[3::4] = (packed >> 6) & 3
    return out[:length]


def pack_3bit(codes: np.ndarray) -> np.ndarray:
    """Represent base codes in the accelerator's 3-bit input format.

    The hardware reserves one extra symbol beyond A/C/G/T/N as the
    progressive-initialization marker (paper Section IV-A); this model
    keeps codes in one byte each but validates the 3-bit range.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) > 7:
        raise ValueError("3-bit code out of range")
    return codes.copy()


INIT_SYMBOL = 7
"""Special 3-bit input symbol used to propagate initial scores."""


def random_sequence(length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random A/C/G/T sequence of ``length`` base codes."""
    return rng.integers(0, 4, size=length, dtype=np.uint8).astype(np.uint8)


def hamming(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between equal-length encoded sequences."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("sequences must have equal length")
    return int(np.count_nonzero(a != b))
