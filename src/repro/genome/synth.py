"""Synthetic reference genomes and read simulation.

The paper evaluates on GRCh38 plus 787 M real 101 bp reads (Platinum
Genomes NA12878).  Neither is available offline, so this module
provides the calibrated synthetic equivalent (see DESIGN.md,
"Substitutions"): what drives every SeedEx experiment is the *edit
structure* of reads relative to the reference — the band-demand
distribution of Figure 2 — not the biological content.

``PLATINUM_LIKE`` is tuned so that the fraction of seed extensions
needing a given band matches the paper's findings: ~98% of extensions
need ``w <= 10`` and ~2% carry a structural indel demanding a large
band.  Reads record their true origin so aligner output can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genome.sequence import decode, random_sequence, reverse_complement


@dataclass(frozen=True)
class ReadProfile:
    """Knobs of the read simulator.

    Rates are per base unless stated otherwise.  ``large_indel_rate``
    is per *read* and plants one structural indel of size uniform in
    ``[large_indel_min, large_indel_max]`` — these are the rare reads
    that genuinely need a wide band.
    """

    read_length: int = 101
    substitution_rate: float = 0.010
    small_indel_rate: float = 0.0012
    small_indel_max: int = 4
    large_indel_rate: float = 0.02
    large_indel_min: int = 8
    large_indel_max: int = 40
    reverse_strand_fraction: float = 0.5


PLATINUM_LIKE = ReadProfile()
"""Default profile calibrated against the paper's Figure 2 shape."""

CLEAN = ReadProfile(
    substitution_rate=0.0,
    small_indel_rate=0.0,
    large_indel_rate=0.0,
)
"""Error-free reads, for pipeline plumbing tests."""


@dataclass
class SimulatedRead:
    """A read plus the ground truth of how it was produced."""

    name: str
    codes: np.ndarray
    true_pos: int
    reverse: bool
    substitutions: int
    insertions: int
    deletions: int

    @property
    def sequence(self) -> str:
        """The read as a DNA string."""
        return decode(self.codes)

    @property
    def edits(self) -> int:
        """Total edits applied to this read."""
        return self.substitutions + self.insertions + self.deletions

    @property
    def indel_span(self) -> int:
        """Total inserted+deleted bases: the read's true band demand."""
        return self.insertions + self.deletions


def synthesize_reference(
    length: int,
    rng: np.random.Generator,
    repeat_fraction: float = 0.05,
    repeat_length: int = 300,
) -> np.ndarray:
    """Generate a reference with a controllable repeat content.

    Real genomes are repetitive; repeats are what make seeding
    ambiguous and reruns interesting.  ``repeat_fraction`` of the
    reference is covered by copies of earlier segments.
    """
    if length <= 0:
        raise ValueError("reference length must be positive")
    ref = random_sequence(length, rng)
    if repeat_fraction <= 0 or length < 2 * repeat_length:
        return ref
    n_repeats = int(length * repeat_fraction / repeat_length)
    for _ in range(n_repeats):
        src = int(rng.integers(0, length - repeat_length))
        dst = int(rng.integers(0, length - repeat_length))
        ref[dst : dst + repeat_length] = ref[src : src + repeat_length]
    return ref


def write_truth_sidecar(reads, reads_path) -> "Path":
    """Write the ``.truth.tsv`` sidecar for a simulated FASTQ.

    ``reads`` is any iterable of :class:`SimulatedRead` (or objects
    with the same truth attributes); the sidecar lands next to
    ``reads_path`` at the canonical ``<reads>.truth.tsv`` location and
    the path is returned.  Imports lazily so the simulator stays free
    of a scorecard dependency unless truth output is requested.
    """
    from repro.scorecard.truth import (
        TruthRecord,
        truth_path_for,
        write_truth,
    )

    path = truth_path_for(reads_path)
    with open(path, "w") as handle:
        write_truth(handle, (TruthRecord.from_read(r) for r in reads))
    return path


class ReadSimulator:
    """Samples reads from a reference with a mutation/error model."""

    def __init__(
        self,
        reference: np.ndarray,
        profile: ReadProfile = PLATINUM_LIKE,
        seed: int = 0,
    ) -> None:
        if len(reference) < profile.read_length + profile.large_indel_max:
            raise ValueError("reference too short for the read profile")
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        self._counter = 0

    def simulate(self, count: int) -> list[SimulatedRead]:
        """Simulate ``count`` reads."""
        return [self._one() for _ in range(count)]

    def _one(self) -> SimulatedRead:
        p = self.profile
        rng = self.rng
        # Over-sample the reference span so deletions can be absorbed.
        span = p.read_length + p.large_indel_max + 8
        pos = int(rng.integers(0, len(self.reference) - span))
        fragment = list(int(b) for b in self.reference[pos : pos + span])

        subs = ins = dels = 0
        # One optional structural indel (the wide-band tail of Fig 2).
        if rng.random() < p.large_indel_rate:
            size = int(rng.integers(p.large_indel_min, p.large_indel_max + 1))
            at = int(rng.integers(8, p.read_length - 8))
            if rng.random() < 0.5:
                del fragment[at : at + size]
                dels += size
            else:
                insert = [int(b) for b in random_sequence(size, rng)]
                fragment[at:at] = insert
                ins += size

        # Small indels.
        n_small = rng.binomial(p.read_length, p.small_indel_rate)
        for _ in range(int(n_small)):
            size = int(rng.integers(1, p.small_indel_max + 1))
            at = int(rng.integers(1, max(2, len(fragment) - size - 1)))
            if rng.random() < 0.5:
                del fragment[at : at + size]
                dels += size
            else:
                fragment[at:at] = [
                    int(b) for b in random_sequence(size, rng)
                ]
                ins += size

        read = np.array(fragment[: p.read_length], dtype=np.uint8)
        # Substitution errors.
        n_subs = int(rng.binomial(p.read_length, p.substitution_rate))
        if n_subs:
            sites = rng.choice(p.read_length, size=n_subs, replace=False)
            shift = rng.integers(1, 4, size=n_subs)
            read[sites] = (read[sites] + shift) % 4
            subs += n_subs

        reverse = bool(rng.random() < p.reverse_strand_fraction)
        if reverse:
            read = reverse_complement(read)
        self._counter += 1
        return SimulatedRead(
            name=f"read{self._counter:07d}",
            codes=read,
            true_pos=pos,
            reverse=reverse,
            substitutions=subs,
            insertions=ins,
            deletions=dels,
        )


@dataclass
class ExtensionJob:
    """One seed-extension work item: the accelerator's input format."""

    query: np.ndarray
    target: np.ndarray
    h0: int
    tag: str = ""


@dataclass(frozen=True)
class LongReadProfile:
    """Error model for long reads (paper Section VII-D).

    Long-read technologies trade length for error rate; the mix is
    indel-dominated.  Defaults approximate corrected long reads (a few
    percent error) — raw-noisy settings also work, they just shrink
    seeds and enlarge fill regions.
    """

    read_length: int = 1500
    length_sd: float = 0.0
    substitution_rate: float = 0.015
    indel_rate: float = 0.02
    indel_max: int = 3
    sv_rate: float = 0.10
    sv_min: int = 10
    sv_max: int = 60
    reverse_strand_fraction: float = 0.0


def simulate_long_reads(
    reference: np.ndarray,
    count: int,
    rng: np.random.Generator,
    profile: LongReadProfile | None = None,
) -> list[SimulatedRead]:
    """Sample long reads with an indel-dominated error model.

    With ``length_sd > 0`` per-read lengths are drawn PBSIM-style from
    a normal distribution around ``read_length`` (clamped to
    ``[300, read_length + 4*length_sd]``); the default ``0.0`` keeps
    every read exactly ``read_length`` long — and draws nothing from
    ``rng`` for it, so existing fixed-seed corpora are unchanged.
    """
    p = profile or LongReadProfile()
    max_len = p.read_length + (
        int(4 * p.length_sd) if p.length_sd else 0
    )
    if len(reference) < max_len + p.sv_max + 64:
        raise ValueError("reference too short for the long-read profile")
    reads = []
    for k in range(count):
        if p.length_sd:
            rlen = int(rng.normal(p.read_length, p.length_sd))
            rlen = max(300, min(max_len, rlen))
        else:
            rlen = p.read_length
        span = rlen + p.sv_max + 64
        pos = int(rng.integers(0, len(reference) - span))
        fragment = [int(b) for b in reference[pos : pos + span]]
        subs = ins = dels = 0
        if rng.random() < p.sv_rate:
            size = int(rng.integers(p.sv_min, p.sv_max + 1))
            at = int(rng.integers(64, rlen - 64))
            if rng.random() < 0.5:
                del fragment[at : at + size]
                dels += size
            else:
                fragment[at:at] = [
                    int(b) for b in random_sequence(size, rng)
                ]
                ins += size
        n_indels = int(rng.binomial(rlen, p.indel_rate))
        for _ in range(n_indels):
            size = int(rng.integers(1, p.indel_max + 1))
            at = int(rng.integers(1, max(2, len(fragment) - size - 1)))
            if rng.random() < 0.5:
                del fragment[at : at + size]
                dels += size
            else:
                fragment[at:at] = [
                    int(b) for b in random_sequence(size, rng)
                ]
                ins += size
        read = np.array(fragment[:rlen], dtype=np.uint8)
        n_subs = int(rng.binomial(rlen, p.substitution_rate))
        if n_subs:
            sites = rng.choice(rlen, size=n_subs, replace=False)
            shift = rng.integers(1, 4, size=n_subs)
            read[sites] = (read[sites] + shift) % 4
            subs += n_subs
        reverse = bool(rng.random() < p.reverse_strand_fraction)
        if reverse:
            read = reverse_complement(read)
        reads.append(
            SimulatedRead(
                name=f"longread{k:06d}",
                codes=read,
                true_pos=pos,
                reverse=reverse,
                substitutions=subs,
                insertions=ins,
                deletions=dels,
            )
        )
    return reads


def fragment_corpus(
    reference: np.ndarray,
    rng: np.random.Generator,
    length: int = 300,
    step: int = 200,
    substitution_rate: float = 0.01,
    count: int | None = None,
) -> list[SimulatedRead]:
    """Shear a reference into tiling fragments with known overlaps.

    Consecutive fragments start ``step`` apart, so each overlaps the
    next by ``length - step`` bases — ground truth for the all-vs-all
    overlap detector (:mod:`repro.apps.overlap`): fragment ``i``'s
    suffix must be reported against fragment ``i+1``'s prefix, and the
    true overlap span follows from the ``true_pos`` fields.  Errors
    are substitution-only so overlap lengths stay exact.
    """
    if not 0 < step < length:
        raise ValueError("need 0 < step < length for overlapping tiles")
    starts = list(range(0, max(1, len(reference) - length + 1), step))
    if count is not None:
        starts = starts[:count]
    reads: list[SimulatedRead] = []
    for k, pos in enumerate(starts):
        frag = reference[pos : pos + length].copy()
        n_subs = int(rng.binomial(len(frag), substitution_rate))
        if n_subs:
            sites = rng.choice(len(frag), size=n_subs, replace=False)
            shift = rng.integers(1, 4, size=n_subs)
            frag[sites] = (frag[sites] + shift) % 4
        reads.append(
            SimulatedRead(
                name=f"frag{k:05d}",
                codes=frag,
                true_pos=pos,
                reverse=False,
                substitutions=n_subs,
                insertions=0,
                deletions=0,
            )
        )
    return reads


def structural_corpus(
    n_jobs: int,
    rng: np.random.Generator,
    query_length: int = 101,
    structural_fraction: float = 0.65,
    deletion_bias: float = 0.85,
    size_range: tuple[int, int] = (15, 55),
    early_subs_max: int = 3,
    substitution_rate: float = 0.01,
    target_margin: int = 70,
    h0_range: tuple[int, int] = (19, 31),
) -> list["ExtensionJob"]:
    """An extension corpus rich in case-c inputs (Figure 14's regime).

    Real case-c extensions — the ones the E-score and edit-distance
    checks exist for — are reads carrying a structural deletion whose
    size approaches the band, with their substitutions clustered right
    after the seed (seeds end at the first error).  This generator
    reproduces that population directly: ``structural_fraction`` of
    jobs get one indel (``deletion_bias`` of them deletions) of size
    uniform in ``size_range``, plus up to ``early_subs_max``
    substitutions in the first 20 query bases.

    Insertions larger than half the band are *designed* to fail the
    checks (their lost matches break the all-match bound on both our
    and the paper's formulation); they model the rerun tail.
    """
    jobs: list[ExtensionJob] = []
    span = query_length + max(size_range[1], target_margin) + 16
    for k in range(n_jobs):
        ref = random_sequence(span + target_margin, rng)
        h0 = int(rng.integers(*h0_range))
        q = list(int(b) for b in ref[:query_length])
        if rng.random() < structural_fraction:
            size = int(rng.integers(size_range[0], size_range[1] + 1))
            # Place the indel after the prefix has banked enough score
            # to survive the gap penalty (otherwise the extension dies
            # and the read is a guaranteed rerun, not a case-c input).
            at_lo = min(size + 12, query_length - 12)
            at = int(rng.integers(at_lo, query_length - 10))
            if rng.random() < deletion_bias:
                q = [int(b) for b in ref[:at]] + [
                    int(b)
                    for b in ref[at + size : at + size + query_length - at]
                ]
            else:
                ins = [int(b) for b in random_sequence(size, rng)]
                tail = query_length - at - size
                if tail > 0:
                    q = (
                        [int(b) for b in ref[:at]]
                        + ins
                        + [int(b) for b in ref[at : at + tail]]
                    )
        q = np.array(q[:query_length], dtype=np.uint8)
        for _ in range(int(rng.integers(0, early_subs_max + 1))):
            pos = int(rng.integers(0, min(20, query_length)))
            q[pos] = (q[pos] + int(rng.integers(1, 4))) % 4
        n_subs = int(rng.binomial(query_length, substitution_rate))
        for _ in range(n_subs):
            pos = int(rng.integers(0, query_length))
            q[pos] = (q[pos] + int(rng.integers(1, 4))) % 4
        target = ref[: query_length + target_margin]
        jobs.append(
            ExtensionJob(query=q, target=target, h0=h0, tag=f"sv{k:06d}")
        )
    return jobs


def extension_corpus(
    n_jobs: int,
    rng: np.random.Generator,
    query_length: int = 101,
    profile: ReadProfile = PLATINUM_LIKE,
    reference_length: int = 200_000,
    h0_range: tuple[int, int] = (19, 40),
    vary_query_length: bool = False,
    min_query_length: int = 12,
) -> list[ExtensionJob]:
    """A standalone corpus of extension jobs with the paper's workload
    shape, for kernel-level experiments that bypass the full aligner.

    Each job is a read fragment (query) against its true reference
    window (target), with a seed score ``h0`` — the form in which
    BWA-MEM hands work to the accelerator.  ``vary_query_length``
    mimics real seed placement: the extension covers only the read
    portion beyond the seed, so query lengths spread uniformly — which
    is what spreads BWA-MEM's *estimated* band across Figure 2's
    buckets (the estimate is proportional to the query length).
    """
    ref = synthesize_reference(reference_length, rng)
    sim_profile = ReadProfile(
        read_length=query_length,
        substitution_rate=profile.substitution_rate,
        small_indel_rate=profile.small_indel_rate,
        small_indel_max=profile.small_indel_max,
        large_indel_rate=profile.large_indel_rate,
        large_indel_min=profile.large_indel_min,
        large_indel_max=profile.large_indel_max,
        reverse_strand_fraction=0.0,
    )
    sim = ReadSimulator(ref, sim_profile, seed=int(rng.integers(2**31)))
    jobs = []
    for read in sim.simulate(n_jobs):
        query = read.codes
        if vary_query_length:
            qlen = int(rng.integers(min_query_length, query_length + 1))
            query = query[:qlen]
        margin = profile.large_indel_max + 8
        t_end = min(len(ref), read.true_pos + len(query) + margin)
        target = ref[read.true_pos : t_end]
        h0 = int(rng.integers(*h0_range))
        jobs.append(
            ExtensionJob(
                query=query,
                target=target,
                h0=h0,
                tag=read.name,
            )
        )
    return jobs
