"""Genomics substrate: sequences, synthetic data, FASTA/FASTQ, SAM."""

from repro.genome.sequence import (
    decode,
    encode,
    reverse_complement,
    reverse_complement_str,
)

__all__ = [
    "decode",
    "encode",
    "reverse_complement",
    "reverse_complement_str",
]
