"""Command-line interface: simulate workloads and align reads.

Usage::

    python -m repro.cli simulate --length 50000 --reads 200 \
        --out-reference ref.fasta --out-reads reads.fastq

    python -m repro.cli align --reference ref.fasta --reads reads.fastq \
        --out out.sam --engine seedex --band 41 \
        --metrics-out metrics.json --trace-out trace.json

    python -m repro.cli align --reference ref.fasta --reads reads.fastq \
        --out out.sam --engine batched --batch-size 4096 --workers 4

    python -m repro.cli analyze --reference ref.fasta --reads reads.fastq

    python -m repro.cli stats metrics.json

The ``align`` command is the end-to-end pipeline with the SeedEx
engine by default — its output is bit-identical to ``--engine full``
at any ``--band``.  ``analyze`` reports the check passing rates the
chosen band would achieve on the given workload.  Every subcommand
accepts ``--metrics-out FILE`` (registry snapshot as JSON) and
``--trace-out FILE`` (Chrome-trace JSON, loadable in Perfetto);
``stats`` pretty-prints a saved metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import obs
from repro.aligner.engines import (
    BatchedEngine,
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.pipeline import Aligner
from repro.analysis.report import format_table
from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.genome.sam import write_sam
from repro.genome.sequence import decode, encode
from repro.genome.synth import (
    CLEAN,
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)
from repro.kernels import available_kernels, get_kernel

PROFILES = {"platinum": PLATINUM_LIKE, "clean": CLEAN}


def build_parser() -> argparse.ArgumentParser:
    """Build the repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs_opts = argparse.ArgumentParser(add_help=False)
    obs_opts.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write a metrics registry snapshot (JSON) on exit",
    )
    obs_opts.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome-trace/Perfetto span timeline (JSON)",
    )

    chaos_opts = argparse.ArgumentParser(add_help=False)
    chaos_opts.add_argument(
        "--chaos",
        action="store_true",
        help="run the engine behind the fault-injecting resilient "
        "dispatcher (see docs/resilience.md)",
    )
    chaos_opts.add_argument(
        "--fault-rate",
        type=float,
        default=0.01,
        metavar="P",
        help="per-site, per-attempt fault probability (default 0.01)",
    )
    chaos_opts.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed of the fault injector (default 0)",
    )
    chaos_opts.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="accelerator retries before the host rerun (default 3)",
    )
    chaos_opts.add_argument(
        "--timeout",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="per-attempt stall/timeout budget (default 0.25)",
    )
    chaos_opts.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="arm the accelerator circuit breaker: N consecutive host "
        "fallbacks trip it open (default: off; see docs/durability.md)",
    )
    chaos_opts.add_argument(
        "--breaker-probe-interval",
        type=int,
        default=32,
        metavar="N",
        help="jobs between half-open probes while the breaker is open "
        "(default 32, backed off while probes keep failing)",
    )

    kernel_opts = argparse.ArgumentParser(add_help=False)
    kernel_opts.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=None,
        help="DP kernel backend: 'scalar' (reference implementation), "
        "'numpy' (vectorized anti-diagonal), or 'striped' "
        "(shape-bucketed inter-sequence lockstep); default from "
        "$REPRO_KERNEL, else scalar.  Alignment output is "
        "bit-identical either way — only the @PG header line records "
        "the choice (see docs/kernels.md)",
    )

    index_opts = argparse.ArgumentParser(add_help=False)
    index_opts.add_argument(
        "--index",
        metavar="FILE",
        help="persistent index artifact built by `repro index build`; "
        "loaded zero-copy via mmap after CRC verification — output is "
        "byte-identical to an index-less run (see docs/index.md)",
    )
    index_opts.add_argument(
        "--rebuild-index",
        action="store_true",
        help="when the --index artifact fails its load ladder "
        "(corrupt, stale schema, drifted reference), rebuild it in "
        "place once and retry instead of aborting",
    )

    sim = sub.add_parser(
        "simulate",
        help="generate a synthetic workload",
        parents=[obs_opts],
    )
    sim.add_argument("--length", type=int, default=50_000)
    sim.add_argument("--reads", type=int, default=100)
    sim.add_argument("--profile", choices=sorted(PROFILES), default="platinum")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out-reference", required=True)
    sim.add_argument("--out-reads", required=True)
    sim.add_argument(
        "--paired",
        action="store_true",
        help="write an interleaved paired-end FASTQ (FR, insert ~400)",
    )
    sim.add_argument(
        "--no-truth",
        action="store_true",
        help="skip the <reads>.truth.tsv sidecar (written by default; "
        "see docs/observability.md)",
    )
    sim.add_argument(
        "--long",
        action="store_true",
        help="simulate long reads (indel-dominated errors, occasional "
        "structural variants) instead of short reads",
    )
    sim.add_argument(
        "--long-length",
        type=int,
        default=1500,
        metavar="BP",
        help="mean long-read length (with --long, default 1500)",
    )
    sim.add_argument(
        "--length-sd",
        type=float,
        default=0.0,
        metavar="BP",
        help="PBSIM-style length spread: sample per-read lengths from "
        "a normal around --long-length (0 = fixed length, default)",
    )

    aln = sub.add_parser(
        "align",
        help="align reads to a reference",
        parents=[obs_opts, chaos_opts, kernel_opts, index_opts],
    )
    aln.add_argument("--reference", required=True)
    aln.add_argument("--reads", required=True)
    aln.add_argument("--out", required=True)
    aln.add_argument(
        "--engine",
        choices=("seedex", "full", "banded", "batched"),
        default="seedex",
        help="extension engine; 'batched' runs the full band through "
        "the deferred-extension wave scheduler (byte-identical to "
        "'full')",
    )
    aln.add_argument("--band", type=int, default=41)
    aln.add_argument("--seeding", choices=("smem", "kmer"), default="kmer")
    aln.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        metavar="N",
        help="reads per scheduling window for the batched/sharded "
        "paths (default 4096)",
    )
    aln.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; >1 shards the reads and merges "
        "per-shard metrics (single-end only, default 1)",
    )
    aln.add_argument(
        "--paired",
        action="store_true",
        help="treat the FASTQ as interleaved pairs (mate rescue on)",
    )
    aln.add_argument(
        "--on-bad-record",
        choices=("fail", "quarantine"),
        default="fail",
        help="malformed FASTQ records: 'fail' aborts (default), "
        "'quarantine' skips them, counting pipeline.input.bad_records",
    )
    aln.add_argument(
        "--run-dir",
        metavar="DIR",
        help="journal completed read windows into DIR (durable run: "
        "killable, resumable with --resume; see docs/durability.md)",
    )
    aln.add_argument(
        "--resume",
        action="store_true",
        help="resume the interrupted run journaled in --run-dir, "
        "recomputing only the missing windows",
    )
    aln.add_argument(
        "--max-restarts",
        type=int,
        default=8,
        metavar="N",
        help="worker respawn budget of the durable run's supervisor "
        "(default 8)",
    )
    aln.add_argument(
        "--hung-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat silence after which a supervised worker is "
        "declared hung and restarted (default 30)",
    )
    aln.add_argument(
        "--start-method",
        choices=("fork", "spawn"),
        default=None,
        help="multiprocessing start method for worker processes "
        "(default: fork where available, else spawn)",
    )
    aln.add_argument(
        "--truth",
        metavar="FILE",
        help="score the finished SAM against this .truth.tsv sidecar "
        "(scoring is read-only: the SAM is byte-identical either way)",
    )
    aln.add_argument(
        "--scorecard-out",
        metavar="FILE",
        help="write the scorecard as JSON; implies --truth, defaulting "
        "to the <reads>.truth.tsv sidecar when --truth is omitted",
    )
    aln.add_argument(
        "--truth-tolerance",
        type=int,
        default=20,
        metavar="BASES",
        help="correct-locus window around the true position, widened "
        "per read by its true indel span (default 20)",
    )
    aln.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON progress line per scheduling window to "
        "stderr (reads done, reads/s, ETA); single-process runs only",
    )

    lr = sub.add_parser(
        "longread",
        help="seed-chain-fill alignment of long reads",
        parents=[obs_opts, kernel_opts],
    )
    lr.add_argument("--reference", required=True)
    lr.add_argument("--reads", required=True)
    lr.add_argument("--out", required=True)
    lr.add_argument(
        "--engine",
        choices=("scalar", "batched"),
        default="batched",
        help="fill/extension schedule: 'scalar' aligns one read and "
        "one gap at a time, 'batched' runs three cross-read waves "
        "(left ends, lockstep gap fills, right ends); output is "
        "byte-identical either way",
    )
    lr.add_argument(
        "--fill-band",
        type=int,
        default=16,
        metavar="W",
        help="speculation band of the inter-seed gap fills (default 16)",
    )
    lr.add_argument(
        "--end-band",
        type=int,
        default=41,
        metavar="W",
        help="band of the checked read-end extensions (default 41)",
    )
    lr.add_argument(
        "--batch-size",
        type=int,
        default=512,
        metavar="N",
        help="long reads per batched scheduling window (default 512)",
    )
    lr.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; >1 shards the reads (default 1)",
    )
    lr.add_argument(
        "--start-method",
        choices=("fork", "spawn"),
        default=None,
        help="multiprocessing start method for worker processes",
    )
    lr.add_argument(
        "--truth",
        metavar="FILE",
        help="score the finished SAM against this .truth.tsv sidecar",
    )
    lr.add_argument(
        "--scorecard-out",
        metavar="FILE",
        help="write the scorecard as JSON; implies --truth, defaulting "
        "to the <reads>.truth.tsv sidecar when --truth is omitted",
    )
    lr.add_argument(
        "--truth-tolerance",
        type=int,
        default=50,
        metavar="BASES",
        help="correct-locus window around the true position (default "
        "50; long-read ends clip more than short reads)",
    )

    ovl = sub.add_parser(
        "overlap",
        help="all-vs-all suffix-prefix overlap detection",
        parents=[obs_opts, kernel_opts],
    )
    ovl.add_argument("--reads", required=True)
    ovl.add_argument("--out", required=True)
    ovl.add_argument(
        "--k",
        type=int,
        default=15,
        metavar="K",
        help="k-mer size of the shared-seed candidate filter",
    )
    ovl.add_argument(
        "--min-shared",
        type=int,
        default=3,
        metavar="N",
        help="shared k-mers (same diagonal) a pair needs to be "
        "verified (default 3)",
    )
    ovl.add_argument(
        "--min-overlap",
        type=int,
        default=50,
        metavar="BP",
        help="shortest overlap worth reporting (default 50)",
    )
    ovl.add_argument(
        "--accept",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="score floor as a fraction of a perfect overlap "
        "(default 0.5)",
    )
    ovl.add_argument(
        "--band",
        type=int,
        default=31,
        metavar="W",
        help="verification band; failures rerun at full band, so any "
        "width yields oracle-equal overlaps (default 31)",
    )
    ovl.add_argument(
        "--batch-size",
        type=int,
        default=512,
        metavar="N",
        help="overlap jobs per verification wave (default 512)",
    )

    sc = sub.add_parser(
        "score",
        help="grade an existing SAM against a truth sidecar",
        parents=[obs_opts],
    )
    sc.add_argument("--sam", required=True, metavar="FILE")
    sc.add_argument(
        "--truth", required=True, metavar="FILE",
        help=".truth.tsv sidecar written by `repro simulate`",
    )
    sc.add_argument(
        "--tolerance",
        type=int,
        default=20,
        metavar="BASES",
        help="correct-locus window (default 20)",
    )
    sc.add_argument(
        "--out",
        metavar="FILE",
        help="write the scorecard as JSON (schema-versioned)",
    )

    bn = sub.add_parser(
        "bench",
        help="run the tier-1 benchmark suite + accuracy run; append "
        "one record to the trend file (see docs/observability.md)",
        parents=[obs_opts],
    )
    bn.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized corpora (same schema, smaller numbers)",
    )
    bn.add_argument(
        "--history",
        default="bench/history.jsonl",
        metavar="FILE",
        help="append-only JSONL trend file (default bench/history.jsonl)",
    )
    bn.add_argument(
        "--baseline",
        metavar="FILE",
        help="extra baseline records (JSONL) consulted by --check; "
        "default bench/baseline.jsonl when it exists",
    )
    bn.add_argument(
        "--check",
        action="store_true",
        help="gate the new record against the rolling baseline: exit "
        "4 on a throughput drop beyond --max-throughput-drop or on "
        "any correct-locus-rate drop",
    )
    bn.add_argument(
        "--max-throughput-drop",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="tolerated fractional drop for *_per_s metrics "
        "(default 0.10)",
    )
    bn.add_argument(
        "--min-correct-locus",
        type=float,
        default=None,
        metavar="RATE",
        help="absolute correct-locus-rate floor for --check",
    )
    bn.add_argument(
        "--benchmarks-dir",
        metavar="DIR",
        help="where to discover bench_*.py (default: the repo's "
        "benchmarks/ directory)",
    )
    bn.add_argument(
        "--scorecard-out",
        metavar="FILE",
        help="also write the accuracy run's full scorecard JSON",
    )
    bn.add_argument(
        "--no-append",
        action="store_true",
        help="measure and gate without touching the trend file",
    )

    ana = sub.add_parser(
        "analyze",
        help="check passing rates for a band",
        parents=[obs_opts, chaos_opts, kernel_opts],
    )
    ana.add_argument("--reference", required=True)
    ana.add_argument("--reads", required=True)
    ana.add_argument("--band", type=int, default=41)
    ana.add_argument("--seeding", choices=("smem", "kmer"), default="kmer")

    st = sub.add_parser(
        "stats",
        help="pretty-print a --metrics-out snapshot",
        parents=[obs_opts],
    )
    st.add_argument(
        "metrics_file", help="metrics JSON written by --metrics-out"
    )

    srv = sub.add_parser(
        "serve",
        help="run the resident alignment server (see docs/serve.md)",
        parents=[obs_opts, kernel_opts, index_opts],
    )
    srv.add_argument("--reference", required=True)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: bind an ephemeral port and "
        "announce it via --port-file)",
    )
    srv.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound port here once listening (how scripts "
        "find an ephemeral port)",
    )
    srv.add_argument(
        "--seeding", choices=("smem", "kmer"), default="smem"
    )
    srv.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        metavar="N",
        help="admission queue bound (default 256)",
    )
    srv.add_argument(
        "--high-water",
        type=int,
        default=None,
        metavar="N",
        help="shed new requests at this queue depth "
        "(default: the capacity)",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="reads per micro-batch wave (default 64)",
    )
    srv.add_argument(
        "--linger-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help="how long a wave waits to fill (default 20)",
    )
    srv.add_argument(
        "--default-deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="deadline for requests that carry none (default: none)",
    )
    srv.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        metavar="PER_S",
        help="per-client token-bucket refill rate "
        "(default: quotas off)",
    )
    srv.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        metavar="N",
        help="token-bucket burst size (default: the rate)",
    )
    srv.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="write-ahead request log directory; on restart the "
        "server reports requests a crashed run admitted but never "
        "answered",
    )
    srv.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failed waves that open the engine circuit "
        "breaker (default 5)",
    )
    srv.add_argument(
        "--breaker-probe-interval",
        type=int,
        default=32,
        metavar="N",
        help="denied waves between half-open probes (default 32)",
    )
    srv.add_argument(
        "--net-disconnect-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos seam: probability a response send finds the "
        "client disconnected (default 0)",
    )
    srv.add_argument(
        "--net-stall-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="chaos seam: probability a response send stalls "
        "(default 0)",
    )
    srv.add_argument(
        "--net-fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="RNG seed of the network fault plan (default 0)",
    )

    idx = sub.add_parser(
        "index",
        help="build, verify, or inspect a persistent index artifact "
        "(see docs/index.md)",
        parents=[obs_opts],
    )
    idx_sub = idx.add_subparsers(dest="index_command", required=True)
    idx_build = idx_sub.add_parser(
        "build",
        help="serialize the reference's seeding structures (suffix "
        "array, FM-index, k-mer tables) into one CRC'd artifact",
    )
    idx_build.add_argument("--reference", required=True)
    idx_build.add_argument("--out", required=True, metavar="FILE")
    idx_build.add_argument(
        "--min-seed-length",
        type=int,
        default=19,
        metavar="K",
        help="k-mer size of the hash tables; must match the aligner's "
        "min seed length for k-mer seeding (default 19)",
    )
    idx_build.add_argument(
        "--sa-sample-rate",
        type=int,
        default=8,
        metavar="N",
        help="FM-index sampled-SA rate (default 8)",
    )
    idx_verify = idx_sub.add_parser(
        "verify",
        help="climb the full load ladder (envelope + every section "
        "CRC) without aligning anything; exit 0 iff intact",
    )
    idx_verify.add_argument("--index", required=True, metavar="FILE")
    idx_info = idx_sub.add_parser(
        "info",
        help="print an artifact's identity: fingerprint, schema, "
        "reference CRC, build params, section table",
    )
    idx_info.add_argument("--index", required=True, metavar="FILE")
    idx_info.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (one JSON object)",
    )

    cl = sub.add_parser(
        "client",
        help="drive a running server: burst a FASTQ at it, or probe "
        "STATUS (see docs/serve.md)",
    )
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument(
        "--port",
        type=int,
        default=None,
        help="server port (or use --port-file)",
    )
    cl.add_argument(
        "--port-file",
        metavar="FILE",
        help="read the port from a file `repro serve --port-file` wrote",
    )
    cl.add_argument(
        "--reads", metavar="FILE", help="FASTQ of reads to align"
    )
    cl.add_argument(
        "--connections",
        type=int,
        default=1,
        metavar="N",
        help="concurrent pipelined connections (default 1)",
    )
    cl.add_argument(
        "--client-id",
        default="",
        metavar="ID",
        help="client id presented for quota accounting",
    )
    cl.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-request deadline to attach (default: none)",
    )
    cl.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="send the FASTQ burst N times over (default 1)",
    )
    cl.add_argument(
        "--out",
        metavar="FILE",
        help="write served SAM body lines, in input order",
    )
    cl.add_argument(
        "--json",
        action="store_true",
        help="print the load report as JSON instead of a summary line",
    )
    cl.add_argument(
        "--status",
        action="store_true",
        help="just print the server's STATUS payload and exit",
    )
    return parser


def _load_reference(path: str) -> tuple[str, np.ndarray]:
    records = read_fasta(path)
    if not records:
        raise SystemExit(f"error: {path} contains no FASTA records")
    if len(records) > 1:
        print(
            f"warning: using first of {len(records)} reference records",
            file=sys.stderr,
        )
    rec = records[0]
    return rec.name, encode(rec.sequence)


def _resolve_kernel(args: argparse.Namespace) -> str:
    """The active DP backend's name; records the ``kernel.active`` gauge."""
    from repro.obs import names as mn

    name = get_kernel(getattr(args, "kernel", None)).name
    if obs.enabled():
        obs.get_registry().gauge(
            mn.KERNEL_ACTIVE,
            "selected DP kernel backend",
            kernel=name,
        ).set(1)
    return name


def _program_tags(
    args: argparse.Namespace, index_meta: dict | None = None
) -> tuple[str, ...]:
    """Extra ``@PG`` fields recording the run's DP backend.

    When a persistent index artifact is in use its content fingerprint
    and schema version join the tag, so every SAM names the exact
    index that seeded it.  Alignment *records* are byte-identical
    either way — only this header line differs, and the differential
    suites compare with ``@PG`` stripped.
    """
    tag = f"DS:kernel={_resolve_kernel(args)}"
    if index_meta is not None:
        tag += (
            f",index={index_meta['fingerprint']}"
            f",schema={index_meta['schema_version']}"
        )
    return (tag,)


def _open_index(args: argparse.Namespace, reference: np.ndarray):
    """The CLI rung of the load ladder; ``None`` without ``--index``.

    Loads and fully verifies the artifact, then pins it to this run's
    reference (and k-mer size, when k-mer seeding is selected).  On a
    typed refusal: with ``--rebuild-index`` the artifact is rebuilt in
    place — exactly once — and reloaded; otherwise the run aborts with
    the typed error.  There is no path from a refused artifact to
    seeds.
    """
    path = getattr(args, "index", None)
    if not path:
        return None
    from repro.index import IndexArtifactError, build_index, load_index
    from repro.obs import names as mn

    def _load_and_pin():
        loaded = load_index(path)
        loaded.check_reference(reference)
        if getattr(args, "seeding", None) == "kmer":
            loaded.check_kmer_size(19)
        return loaded

    try:
        return _load_and_pin()
    except IndexArtifactError as exc:
        if not getattr(args, "rebuild_index", False):
            raise SystemExit(
                f"error: {type(exc).__name__}: {exc}\n(rerun with "
                "--rebuild-index to rebuild the artifact in place, "
                f"or `repro index build --reference {args.reference} "
                f"--out {path}`)"
            ) from exc
        print(
            f"warning: rebuilding {path}: {exc}", file=sys.stderr
        )
        if obs.enabled():
            obs.get_registry().counter(
                mn.INDEX_REBUILDS, "artifacts rebuilt after refusal"
            ).inc()
        build_index(reference, path)
        return _load_and_pin()


def _make_engine(args: argparse.Namespace):
    registry = obs.get_registry() if obs.enabled() else None
    kernel = getattr(args, "kernel", None)
    if args.engine == "seedex":
        return SeedExEngine(
            band=args.band, registry=registry, kernel=kernel
        )
    if args.engine == "full":
        return FullBandEngine(kernel=kernel)
    if args.engine == "batched":
        # Full band through the wave scheduler: byte-identical to
        # --engine full, so --band does not apply here.
        return BatchedEngine(kernel=kernel)
    return PlainBandedEngine(args.band, kernel=kernel)


def _engine_spec(args: argparse.Namespace):
    """The picklable :class:`EngineSpec` matching the CLI flags."""
    from repro.aligner.parallel import EngineSpec

    band: int | None = None
    if args.engine in ("seedex", "banded"):
        band = args.band
    return EngineSpec(
        kind=args.engine,
        band=band,
        # Resolved to a concrete name here so workers do not depend on
        # the parent's environment.
        kernel=get_kernel(getattr(args, "kernel", None)).name,
        chaos=getattr(args, "chaos", False),
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        max_retries=args.max_retries,
        timeout_s=args.timeout,
        breaker_threshold=getattr(args, "breaker_threshold", None),
        breaker_probe_interval=getattr(args, "breaker_probe_interval", 32),
    )


def _wrap_chaos(engine, args: argparse.Namespace):
    """Wrap ``engine`` per the ``--chaos``/breaker flags; ``None`` off."""
    chaos = getattr(args, "chaos", False)
    threshold = getattr(args, "breaker_threshold", None)
    if not chaos and threshold is None:
        return engine, None
    from repro.aligner.engines import make_resilient

    dispatcher = make_resilient(
        engine,
        fault_rate=args.fault_rate if chaos else 0.0,
        fault_seed=args.fault_seed,
        max_retries=args.max_retries,
        timeout_s=args.timeout,
        registry=obs.get_registry() if obs.enabled() else None,
        breaker_threshold=threshold,
        breaker_probe_interval=getattr(args, "breaker_probe_interval", 32),
    )
    return dispatcher, dispatcher


def _print_chaos_summary(dispatcher) -> None:
    """One-line resilience accounting after a chaos run."""
    stats = dispatcher.stats
    print(
        f"chaos: {stats.injected_total} faults injected "
        f"({stats.detected_total} detected, "
        f"{stats.tolerated_total} tolerated), "
        f"{stats.retries} retries, {stats.timeouts} timeouts, "
        f"{stats.fallbacks} host fallbacks, "
        f"{stats.dead_letters} dead letters"
    )
    if not stats.accounted():
        print(
            "warning: fault accounting mismatch "
            "(injected != detected + tolerated)",
            file=sys.stderr,
        )
    breaker = getattr(dispatcher, "breaker", None)
    if breaker is not None:
        print(
            f"breaker: state {breaker.state}, {breaker.trips} trips, "
            f"{breaker.short_circuits} short circuits, "
            f"{breaker.probes} probes"
        )


class _JsonProgress:
    """Per-window JSON progress lines on stderr (``--log-json``).

    When obs is enabled, the reads-done figure is read back from the
    live registry snapshot (the same ``aligner.reads.total`` counter a
    ``--metrics-out`` export reports), so the progress stream and the
    final metrics cannot disagree; otherwise the scheduler's own tally
    is used.
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def __call__(self, window: int, done: int, total: int) -> None:
        from repro.obs import names as mn

        if obs.enabled():
            snap = obs.get_registry().snapshot()
            done = int(snap["counters"].get(mn.ALIGNER_READS_TOTAL, done))
        elapsed = time.perf_counter() - self._start
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total - done) / rate if rate > 0 else None
        print(
            json.dumps(
                {
                    "event": "wave",
                    "wave": window,
                    "reads_done": done,
                    "reads_total": total,
                    "reads_per_s": round(rate, 1),
                    "eta_s": None if eta is None else round(eta, 1),
                    "elapsed_s": round(elapsed, 3),
                }
            ),
            file=sys.stderr,
            flush=True,
        )


def _score_after_align(args: argparse.Namespace) -> None:
    """Grade the finished SAM when ``--truth``/``--scorecard-out`` ask.

    Runs strictly after the SAM is on disk and only reads it, so
    output bytes are identical with scoring on or off.
    """
    truth = getattr(args, "truth", None)
    card_out = getattr(args, "scorecard_out", None)
    if not truth and not card_out:
        return
    from repro.scorecard import TruthError, score_sam, truth_path_for

    truth = truth or truth_path_for(args.reads)
    try:
        card = score_sam(args.out, truth, tolerance=args.truth_tolerance)
    except OSError as exc:
        raise SystemExit(f"error: cannot score run: {exc}") from exc
    except TruthError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if obs.enabled():
        card.publish(obs.get_registry())
    print(card.summary())
    if card_out:
        card.write_json(card_out)
        print(f"wrote scorecard to {card_out}")


def cmd_longread(args: argparse.Namespace) -> int:
    """Align long reads (seed-chain-fill), write SAM."""
    from repro.aligner.longread import align_long_sharded
    from repro.aligner.parallel import EngineSpec, StartMethodError

    name, reference = _load_reference(args.reference)
    reads = read_fastq(args.reads)
    if args.batch_size < 1:
        raise SystemExit("error: --batch-size must be at least 1")
    if args.workers < 1:
        raise SystemExit("error: --workers must be at least 1")
    kernel = _resolve_kernel(args)
    spec = None
    if args.engine == "batched":
        # Full band through the end-extension waves: byte-identical
        # to the scalar SeedExtender, whose checked results equal the
        # full-band oracle by the paper's guarantee.
        spec = EngineSpec(kind="batched", kernel=kernel)
    encoded = [(r.name, encode(r.sequence)) for r in reads]
    start = time.perf_counter()
    try:
        records = align_long_sharded(
            reference,
            encoded,
            mode=args.engine,
            spec=spec,
            workers=args.workers,
            batch_size=args.batch_size,
            start_method=args.start_method,
            fill_band=args.fill_band,
            end_band=args.end_band,
            reference_name=name,
        )
    except StartMethodError as exc:
        raise SystemExit(f"error: {exc}")
    elapsed = time.perf_counter() - start
    with open(args.out, "w") as handle:
        write_sam(
            handle, records, name, len(reference),
            program_tags=_program_tags(args),
        )
    mapped = sum(1 for r in records if not r.is_unmapped)
    print(
        f"aligned {len(records)} long reads ({mapped} mapped) in "
        f"{elapsed:.1f}s with engine {args.engine}"
    )
    _score_after_align(args)
    return 0


def cmd_overlap(args: argparse.Namespace) -> int:
    """Detect all-vs-all overlaps in a FASTQ, write a PAF-like TSV."""
    from repro.apps.overlap import (
        OverlapParams,
        find_overlaps,
        write_overlaps,
    )

    reads = read_fastq(args.reads)
    params = OverlapParams(
        k=args.k,
        min_shared=args.min_shared,
        min_overlap=args.min_overlap,
        accept=args.accept,
        band=args.band,
        batch_size=args.batch_size,
    )
    if params.batch_size < 1:
        raise SystemExit("error: --batch-size must be at least 1")
    encoded = [(r.name, encode(r.sequence)) for r in reads]
    start = time.perf_counter()
    overlaps = find_overlaps(
        encoded, params, kernel=_resolve_kernel(args)
    )
    elapsed = time.perf_counter() - start
    with open(args.out, "w") as handle:
        write_overlaps(handle, overlaps)
    proved = sum(1 for o in overlaps if o.proved)
    print(
        f"found {len(overlaps)} overlaps among {len(reads)} reads "
        f"({proved} proved on band {params.band}, "
        f"{len(overlaps) - proved} full-band reruns) in {elapsed:.1f}s"
    )
    return 0


def cmd_score(args: argparse.Namespace) -> int:
    """Grade an existing SAM run against its truth sidecar."""
    from repro.scorecard import TruthError, score_sam

    try:
        card = score_sam(args.sam, args.truth, tolerance=args.tolerance)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TruthError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if obs.enabled():
        card.publish(obs.get_registry())
    print(card.summary())
    if card.missing_truth or card.truth_unseen:
        print(
            f"warning: {card.missing_truth} record(s) without truth, "
            f"{card.truth_unseen} truth row(s) never aligned",
            file=sys.stderr,
        )
    if args.out:
        card.write_json(args.out)
        print(f"wrote scorecard to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the tier-1 bench suite; trend-record and optionally gate.

    Exit codes: 0 clean, 2 on setup errors, 4 when ``--check`` finds
    a regression (the record is still appended first — a failing run
    is exactly the history worth keeping).
    """
    from pathlib import Path

    from repro.bench import (
        append_record,
        check_record,
        load_records,
        run_suite,
    )

    try:
        record = run_suite(
            args.quick,
            bench_dir=args.benchmarks_dir,
            log=lambda msg: print(msg, file=sys.stderr),
            scorecard_out=args.scorecard_out,
        )
    except (OSError, ValueError) as exc:
        print(f"error: bench suite failed: {exc}", file=sys.stderr)
        return 2
    print(
        f"bench: {record['git_rev']} on {record['host']} "
        f"(fingerprint {record['fingerprint']}, quick={record['quick']})"
    )
    for name in sorted(record["metrics"]):
        print(f"  {name} = {record['metrics'][name]:,.4f}")
    if args.scorecard_out:
        print(f"wrote scorecard to {args.scorecard_out}")

    baseline_path = args.baseline
    if baseline_path is None:
        default = Path("bench") / "baseline.jsonl"
        baseline_path = str(default) if default.exists() else None
    baseline = []
    if baseline_path:
        baseline.extend(load_records(baseline_path))
    baseline.extend(load_records(args.history))

    if not args.no_append:
        append_record(args.history, record)
        print(f"appended record to {args.history}")

    if not args.check:
        return 0
    result = check_record(
        record,
        baseline,
        max_drop=args.max_throughput_drop,
        min_correct_locus=args.min_correct_locus,
    )
    for line in result.lines:
        print(line)
    if not result.ok:
        print(
            "bench gate: FAIL ("
            + ", ".join(sorted(set(result.failures)))
            + ")"
        )
        return 4
    print("bench gate: pass")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Generate a synthetic reference + FASTQ workload.

    Unless ``--no-truth`` is given, the ground truth of every read
    (origin, strand, edit counts) is written to the canonical
    ``<reads>.truth.tsv`` sidecar so the run can later be scored with
    ``repro score`` or ``repro align --truth``.
    """
    from repro.scorecard.truth import TruthRecord

    if args.long and args.paired:
        raise SystemExit("error: --long and --paired are exclusive")
    rng = np.random.default_rng(args.seed)
    reference = synthesize_reference(args.length, rng)
    records: list[FastqRecord] = []
    truth_rows: list[TruthRecord] = []
    if args.long:
        from repro.genome.synth import LongReadProfile, simulate_long_reads

        profile = LongReadProfile(
            read_length=args.long_length, length_sd=args.length_sd
        )
        for r in simulate_long_reads(
            reference, args.reads, rng, profile=profile
        ):
            records.append(
                FastqRecord(r.name, r.sequence, "I" * len(r.codes))
            )
            truth_rows.append(TruthRecord.from_read(r))
    elif args.paired:
        from repro.aligner.paired import simulate_pairs

        for pair, pos1, pos2 in simulate_pairs(
            reference, args.reads, rng, profile=PROFILES[args.profile]
        ):
            for suffix, codes in (("/1", pair.first), ("/2", pair.second)):
                records.append(
                    FastqRecord(
                        pair.name + suffix,
                        decode(codes),
                        "I" * len(codes),
                    )
                )
            # Mate 1 maps forward at the fragment's left end, mate 2
            # reverse at its right end; per-mate edit counts are not
            # tracked by the pair simulator, hence unknown.
            truth_rows.append(
                TruthRecord(pair.name + "/1", pos1, reverse=False)
            )
            truth_rows.append(
                TruthRecord(pair.name + "/2", pos2, reverse=True)
            )
    else:
        sim = ReadSimulator(
            reference, PROFILES[args.profile], seed=args.seed
        )
        for r in sim.simulate(args.reads):
            records.append(
                FastqRecord(r.name, r.sequence, "I" * len(r.codes))
            )
            truth_rows.append(TruthRecord.from_read(r))
    with open(args.out_reference, "w") as handle:
        write_fasta(handle, [FastaRecord("chr1", decode(reference))])
    with open(args.out_reads, "w") as handle:
        write_fastq(handle, records)
    message = (
        f"wrote {args.length} bp reference to {args.out_reference} and "
        f"{len(records)} reads to {args.out_reads}"
    )
    if not args.no_truth:
        from repro.scorecard.truth import truth_path_for, write_truth

        truth_path = truth_path_for(args.out_reads)
        with open(truth_path, "w") as handle:
            write_truth(handle, truth_rows)
        message += f" (truth sidecar: {truth_path})"
    print(message)
    return 0


def _read_input_fastq(args: argparse.Namespace):
    """Load the FASTQ per ``--on-bad-record``; returns the records.

    ``quarantine`` mode skips malformed records (counted as
    ``pipeline.input.bad_records``, warned to stderr, and listed in
    ``<run-dir>/bad_records.tsv`` when a run directory exists) instead
    of aborting the run.
    """
    from repro.genome.io_fasta import MalformedRecordError
    from repro.obs import names as mn

    policy = getattr(args, "on_bad_record", "fail")
    if policy == "fail":
        try:
            return read_fastq(args.reads)
        except MalformedRecordError as exc:
            raise SystemExit(
                f"error: {exc} (rerun with --on-bad-record quarantine "
                "to skip malformed records)"
            ) from exc
    bad: list[MalformedRecordError] = []
    reads = read_fastq(args.reads, on_bad=bad.append)
    if bad:
        if obs.enabled():
            obs.get_registry().counter(
                mn.PIPELINE_INPUT_BAD_RECORDS,
                "malformed input records skipped",
            ).inc(len(bad))
        for exc in bad:
            print(f"warning: skipped bad record: {exc}", file=sys.stderr)
        run_dir = getattr(args, "run_dir", None)
        if run_dir:
            from pathlib import Path

            directory = Path(run_dir)
            directory.mkdir(parents=True, exist_ok=True)
            with open(directory / "bad_records.tsv", "a") as handle:
                for exc in bad:
                    handle.write(
                        f"{exc.path or args.reads}\t{exc.line}\t"
                        f"{exc.reason}\n"
                    )
    return reads


def cmd_align(args: argparse.Namespace) -> int:
    """Align a FASTQ against a FASTA reference, write SAM."""
    name, reference = _load_reference(args.reference)
    reads = _read_input_fastq(args)
    if args.batch_size < 1:
        raise SystemExit("error: --batch-size must be at least 1")
    if args.workers < 1:
        raise SystemExit("error: --workers must be at least 1")
    if args.resume and not args.run_dir:
        raise SystemExit("error: --resume needs --run-dir")
    if args.index and args.paired:
        raise SystemExit("error: --index supports single-end reads only")
    if args.run_dir:
        if args.paired:
            raise SystemExit(
                "error: --run-dir supports single-end reads only"
            )
        code = _align_durable_cmd(args, name, reference, reads)
        if code == 0:
            _score_after_align(args)
        return code
    if args.workers > 1:
        if args.paired:
            raise SystemExit(
                "error: --workers > 1 supports single-end reads only"
            )
        code = _align_sharded_cmd(args, name, reference, reads)
        if code == 0:
            _score_after_align(args)
        return code
    base_engine = _make_engine(args)
    engine, dispatcher = _wrap_chaos(base_engine, args)
    start = time.perf_counter()
    if args.paired:
        from repro.aligner.paired import PairedAligner, ReadPair

        if len(reads) % 2:
            raise SystemExit(
                "error: --paired needs an even number of reads "
                "(interleaved mates)"
            )
        paired = PairedAligner(reference, engine, seeding=args.seeding)
        paired.aligner.reference_name = name
        pairs = [
            ReadPair(
                first.name.rstrip("/1"),
                encode(first.sequence),
                encode(second.sequence),
            )
            for first, second in zip(reads[0::2], reads[1::2])
        ]
        records = []
        if args.engine == "batched":
            # Mates and rescue candidates go through cross-pair waves;
            # records are byte-identical to the per-pair path.
            for r1, r2 in paired.align_pairs_batched(
                pairs, engine=engine, batch_size=args.batch_size
            ):
                records.extend([r1, r2])
        else:
            for pair in pairs:
                records.extend(paired.align_pair(pair))
        elapsed = time.perf_counter() - start
        with open(args.out, "w") as handle:
            write_sam(
                handle, records, name, len(reference),
                program_tags=_program_tags(args),
            )
        mapped = sum(1 for r in records if not r.is_unmapped)
        print(
            f"aligned {len(records) // 2} pairs ({mapped} mates mapped, "
            f"{paired.stats.proper} proper, {paired.stats.rescued} "
            f"rescued) in {elapsed:.1f}s with engine {engine.name}"
        )
        if dispatcher is not None:
            _print_chaos_summary(dispatcher)
        _score_after_align(args)
        return 0
    aligner = Aligner(
        reference,
        engine,
        seeding=args.seeding,
        reference_name=name,
        index=_open_index(args, reference),
    )
    encoded = [(r.name, encode(r.sequence)) for r in reads]
    progress = _JsonProgress() if args.log_json else None
    if args.engine == "batched":
        records = aligner.align_batched(
            encoded, batch_size=args.batch_size, progress=progress
        )
    else:
        records = []
        for i, (rname, codes) in enumerate(encoded):
            records.append(aligner.align_read(codes, rname))
            if progress is not None and (
                (i + 1) % args.batch_size == 0 or i + 1 == len(encoded)
            ):
                progress(i // args.batch_size, i + 1, len(encoded))
    elapsed = time.perf_counter() - start
    with open(args.out, "w") as handle:
        write_sam(
            handle, records, name, len(reference),
            program_tags=_program_tags(args, aligner.index_meta),
        )
    mapped = sum(1 for r in records if not r.is_unmapped)
    print(
        f"aligned {len(records)} reads ({mapped} mapped) in "
        f"{elapsed:.1f}s with engine {engine.name}"
    )
    if isinstance(base_engine, SeedExEngine):
        stats = base_engine.stats
        print(
            f"check passing rate {stats.passing_rate:.1%} "
            f"({stats.reruns} full-band reruns of {stats.total} "
            "extensions)"
        )
    if dispatcher is not None:
        _print_chaos_summary(dispatcher)
    _score_after_align(args)
    return 0


def _align_sharded_cmd(
    args: argparse.Namespace, name: str, reference, reads
) -> int:
    """The ``align --workers N`` path: shard reads across processes.

    Worker metric snapshots are merged into the parent registry, so
    ``--metrics-out`` reflects the whole run; chaos accounting for a
    sharded run lives in those merged metrics rather than a parent-side
    dispatcher summary (each worker runs its own dispatcher).
    """
    from repro.aligner.parallel import StartMethodError, align_sharded
    from repro.index import IndexArtifactError

    spec = _engine_spec(args)
    loaded = _open_index(args, reference)
    encoded = [(r.name, encode(r.sequence)) for r in reads]
    options = {"seeding": args.seeding, "reference_name": name}
    if loaded is not None:
        # Workers get the picklable capability (path + pinned
        # fingerprint), not the loaded artifact: each opens the same
        # file and shares its pages through the OS cache.
        options["index"] = loaded.handle()
    start = time.perf_counter()
    try:
        records = align_sharded(
            reference,
            encoded,
            spec=spec,
            workers=args.workers,
            batch_size=args.batch_size,
            start_method=args.start_method,
            **options,
        )
    except StartMethodError as exc:
        raise SystemExit(f"error: {exc}")
    except IndexArtifactError as exc:
        raise SystemExit(f"error: {type(exc).__name__}: {exc}")
    elapsed = time.perf_counter() - start
    with open(args.out, "w") as handle:
        write_sam(
            handle, records, name, len(reference),
            program_tags=_program_tags(
                args, loaded.meta() if loaded is not None else None
            ),
        )
    mapped = sum(1 for r in records if not r.is_unmapped)
    print(
        f"aligned {len(records)} reads ({mapped} mapped) in "
        f"{elapsed:.1f}s with engine {args.engine} across "
        f"{args.workers} workers"
    )
    if getattr(args, "chaos", False):
        print(
            "chaos: per-worker fault accounting merged into the "
            "metrics registry (see --metrics-out)"
        )
    return 0


def _align_durable_cmd(
    args: argparse.Namespace, name: str, reference, reads
) -> int:
    """The ``align --run-dir`` path: journaled, supervised, resumable.

    Completed read windows are committed to the run directory as they
    finish; SIGINT/SIGTERM drain the in-flight wave, flush the
    journal, and exit with code 3 plus a resume hint.  ``--resume``
    validates the journal against the current configuration and
    recomputes only the missing windows; the stitched SAM is
    byte-identical to an uninterrupted run.
    """
    from repro.aligner.parallel import StartMethodError
    from repro.durability import (
        GracefulShutdown,
        JournalError,
        RunInterrupted,
        SupervisorError,
        SupervisorPolicy,
        run_fingerprint,
        run_journaled,
    )
    from repro.index import IndexArtifactError

    spec = _engine_spec(args)
    loaded = _open_index(args, reference)
    # The index fingerprint joins the journal manifest's configuration
    # fingerprint, so `--resume` refuses a drifted artifact — while a
    # byte-identical rebuild (same content fingerprint) still resumes.
    fingerprint = run_fingerprint(
        args.reference,
        args.reads,
        spec,
        batch_size=args.batch_size,
        seeding=args.seeding,
        on_bad_record=args.on_bad_record,
        index_fingerprint=(
            loaded.fingerprint if loaded is not None else None
        ),
    )
    options = {"seeding": args.seeding}
    if loaded is not None:
        options["index"] = loaded.handle()
    policy = SupervisorPolicy(
        max_restarts=args.max_restarts, hung_timeout=args.hung_timeout
    )
    encoded = [(r.name, encode(r.sequence)) for r in reads]
    start = time.perf_counter()
    try:
        with GracefulShutdown() as shutdown:
            report = run_journaled(
                args.run_dir,
                reference,
                encoded,
                fingerprint,
                out_path=args.out,
                reference_name=name,
                spec=spec,
                workers=args.workers,
                batch_size=args.batch_size,
                resume=args.resume,
                policy=policy,
                should_stop=shutdown,
                start_method=args.start_method,
                program_tags=_program_tags(
                    args, loaded.meta() if loaded is not None else None
                ),
                **options,
            )
    except RunInterrupted as exc:
        print(
            f"interrupted: {exc.done}/{exc.total} windows journaled in "
            f"{exc.run_dir}"
        )
        print(
            f"resume with: python -m repro.cli align --reference "
            f"{args.reference} --reads {args.reads} --out {args.out} "
            f"--run-dir {args.run_dir} --resume"
        )
        return 3
    except (JournalError, SupervisorError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    except StartMethodError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except IndexArtifactError as exc:
        raise SystemExit(
            f"error: {type(exc).__name__}: {exc}"
        ) from exc
    elapsed = time.perf_counter() - start
    parts = [
        f"aligned {len(encoded)} reads in {elapsed:.1f}s with engine "
        f"{args.engine} across {args.workers} worker(s)"
    ]
    if report.resumed:
        parts.append(
            f"resumed: {report.skipped_windows}/{report.total_windows} "
            "windows reused from the journal"
        )
    if report.dropped_windows:
        parts.append(
            f"recomputed {len(report.dropped_windows)} corrupt "
            "journal segment(s)"
        )
    if report.restarts:
        parts.append(f"worker restarts: {report.restarts}")
    if report.quarantined:
        parts.append(
            f"quarantined {len(report.quarantined)} poison read(s) "
            f"to {report.run_dir}/quarantine.fastq"
        )
    print("; ".join(parts))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Report check passing rates for a workload at one band.

    The table is sourced from the metrics-registry snapshot — the same
    numbers ``--metrics-out`` exports — so Figure-14 accounting and
    production metrics cannot drift apart.
    """
    from repro.obs import names as mn

    name, reference = _load_reference(args.reference)
    reads = read_fastq(args.reads)
    kernel_name = _resolve_kernel(args)
    base_engine = SeedExEngine(
        band=args.band,
        registry=obs.get_registry(),
        kernel=getattr(args, "kernel", None),
    )
    base_engine.stats.reset()  # this invocation's workload only
    engine, dispatcher = _wrap_chaos(base_engine, args)
    aligner = Aligner(
        reference, engine, seeding=args.seeding, reference_name=name
    )
    for r in reads:
        aligner.align_read(encode(r.sequence), r.name)
    stats = base_engine.stats
    snap = stats.registry.snapshot()
    counters = snap["counters"]
    total = counters.get(mn.EXTENSIONS_TOTAL, 0)
    rows: list[tuple[str, object]] = [
        ("band", args.band),
        ("kernel", kernel_name),
        ("extensions", total),
        (
            "threshold-only passing rate",
            f"{stats.threshold_only_rate:.1%}",
        ),
        ("overall passing rate", f"{stats.passing_rate:.1%}"),
        ("rerun fraction", f"{stats.rerun_rate:.1%}"),
    ]
    prefix = mn.CHECK_OUTCOME + "{outcome="
    outcome_rows = sorted(
        (
            (key[len(prefix):-1], count)
            for key, count in counters.items()
            if key.startswith(prefix) and count
        ),
        key=lambda kv: -kv[1],
    )
    rows.extend(
        (f"outcome {outcome}", count) for outcome, count in outcome_rows
    )
    print(f"band: {args.band}")
    print(format_table(("metric", "value"), rows))
    if dispatcher is not None:
        _print_chaos_summary(dispatcher)
    return 0


_STATS_TABLES = (
    ("counters", ("counter", "value")),
    ("gauges", ("gauge", "value")),
)


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``--metrics-out``."""
    try:
        with open(args.metrics_file) as handle:
            snap = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read {args.metrics_file}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.metrics_file} is not a metrics snapshot "
            f"(invalid JSON: {exc})",
            file=sys.stderr,
        )
        return 2
    for section, headers in _STATS_TABLES:
        entries = snap.get(section) or {}
        if not entries:
            continue
        print(f"\n== {section} ==")
        print(
            format_table(
                headers, sorted(entries.items(), key=lambda kv: kv[0])
            )
        )
    histograms = snap.get("histograms") or {}
    if histograms:
        print("\n== histograms ==")
        rows = []
        for key, h in sorted(histograms.items(), key=lambda kv: kv[0]):
            q = h.get("quantiles") or {}
            rows.append(
                (
                    key,
                    h.get("count", 0),
                    h.get("mean", 0.0),
                    _q(q, "p50"),
                    _q(q, "p90"),
                    _q(q, "p99"),
                    h.get("max") if h.get("max") is not None else "-",
                )
            )
        print(
            format_table(
                ("histogram", "count", "mean", "p50", "p90", "p99", "max"),
                rows,
            )
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident alignment server until signalled, then drain.

    The reference is loaded and indexed once; requests stream through
    the wave scheduler continuously.  SIGINT/SIGTERM stop admission,
    flush the in-flight waves, answer every straggler, and exit 0 —
    a second signal kills immediately.  See ``docs/serve.md``.
    """
    from repro.serve.server import AlignmentServer, ServeConfig

    name, reference = _load_reference(args.reference)
    _resolve_kernel(args)
    engine = BatchedEngine(kernel=getattr(args, "kernel", None))
    aligner = Aligner(
        reference,
        engine,
        seeding=args.seeding,
        reference_name=name,
        index=_open_index(args, reference),
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        queue_capacity=args.queue_capacity,
        high_water=args.high_water,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        default_deadline_ms=args.default_deadline_ms,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        wal_dir=args.wal_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_probe_interval=args.breaker_probe_interval,
    )
    server = AlignmentServer(aligner, config)
    if args.net_disconnect_rate or args.net_stall_rate:
        from repro.faults.netfaults import NetFaultPlan, NetFaultPolicy

        server.fault_plan = NetFaultPlan(
            NetFaultPolicy(
                seed=args.net_fault_seed,
                disconnect_rate=args.net_disconnect_rate,
                stall_rate=args.net_stall_rate,
            )
        )
    port = server.start()
    if server.lost_on_restart:
        lost_ids = [rec.get("id") for rec in server.lost_on_restart]
        print(
            f"wal: previous run admitted {len(lost_ids)} requests it "
            f"never answered: {', '.join(map(str, lost_ids))}",
            file=sys.stderr,
        )
    banner = (
        f"serving {name} ({len(reference)} bases) on "
        f"{args.host}:{port} (queue {config.queue_capacity}, "
        f"batch {config.max_batch})"
    )
    if aligner.index_meta is not None:
        banner += (
            f" [index {aligner.index_meta['fingerprint']} "
            f"schema {aligner.index_meta['schema_version']}]"
        )
    print(banner, flush=True)
    code = server.serve_forever()
    snap = server.stats.snapshot()
    shed_total = sum(snap["shed"].values())
    print(
        f"drained: served {snap['served']}, shed {shed_total}, "
        f"timeouts {snap['timeouts']}, "
        f"waves {snap['waves']}"
    )
    return code


def cmd_index(args: argparse.Namespace) -> int:
    """Build, verify, or inspect a persistent index artifact.

    ``build`` is deterministic and atomic (tmp + fsync + rename) and
    re-verifies its own bytes before reporting success; ``verify``
    climbs the full load ladder and exits non-zero with the typed
    error on any refusal; ``info`` prints the artifact's identity.
    """
    from repro.index import (
        IndexArtifactError,
        build_index,
        read_header,
        verify_artifact,
    )

    if args.index_command == "build":
        _, reference = _load_reference(args.reference)
        start = time.perf_counter()
        loaded = build_index(
            reference,
            args.out,
            k=args.min_seed_length,
            sa_sample_rate=args.sa_sample_rate,
        )
        elapsed = time.perf_counter() - start
        from pathlib import Path

        size = Path(args.out).stat().st_size
        print(
            f"built {args.out} ({size} bytes) in {elapsed:.1f}s: "
            f"fingerprint {loaded.fingerprint}, schema "
            f"{loaded.header.schema_version}, {len(reference)} bases, "
            f"k={loaded.header.k}"
        )
        return 0
    if args.index_command == "verify":
        try:
            header = verify_artifact(args.index)
        except IndexArtifactError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
        print(
            f"{args.index}: intact (fingerprint {header.fingerprint}, "
            f"schema {header.schema_version}, "
            f"{len(header.sections)} sections verified)"
        )
        return 0
    # info: envelope only — prints identity even when a section is
    # damaged (verify is the integrity tool).
    try:
        header = read_header(args.index)
    except IndexArtifactError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    payload = {
        "path": args.index,
        "fingerprint": header.fingerprint,
        "schema_version": header.schema_version,
        "reference_length": header.reference_length,
        "reference_crc": f"{header.reference_crc:08x}",
        "params": header.params,
        "sections": {
            name: {
                "dtype": meta.dtype,
                "shape": list(meta.shape),
                "nbytes": meta.nbytes,
            }
            for name, meta in sorted(header.sections.items())
        },
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{args.index}: fingerprint {header.fingerprint}, schema "
            f"{header.schema_version}, reference "
            f"{header.reference_length} bases "
            f"(crc {header.reference_crc:08x}), k={header.k}, "
            f"sa_sample_rate={header.sa_sample_rate}"
        )
        for name, meta in sorted(header.sections.items()):
            print(
                f"  {name}: {meta.dtype}{list(meta.shape)} "
                f"({meta.nbytes} bytes)"
            )
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Drive a running server with a pipelined FASTQ burst.

    Exit code 0 when every request was answered (served or typed
    rejection); 1 when any request went unanswered (the connection
    died first).  ``--status`` instead prints the server's health
    payload and exits.
    """
    from repro.serve.client import request_status, run_load

    port = args.port
    if port is None:
        if not args.port_file:
            raise SystemExit("error: need --port or --port-file")
        try:
            with open(args.port_file) as handle:
                port = int(handle.read().strip())
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"error: cannot read port from {args.port_file}: {exc}"
            )
    if args.status:
        print(
            json.dumps(
                request_status(args.host, port), indent=2, sort_keys=True
            )
        )
        return 0
    if not args.reads:
        raise SystemExit("error: need --reads (or --status)")
    fastq = read_fastq(args.reads)
    pairs = [(r.name, r.sequence) for r in fastq] * max(1, args.repeat)
    report = run_load(
        args.host,
        port,
        pairs,
        connections=args.connections,
        client=args.client_id,
        deadline_ms=args.deadline_ms,
    )
    if args.out:
        prefix = args.client_id or "load"
        with open(args.out, "w") as handle:
            for index in range(len(pairs)):
                sam = report.ok.get(f"{prefix}-{index}")
                if sam is not None:
                    handle.write(sam + "\n")
    shed_by_code: dict[str, int] = {}
    for payload in report.errors.values():
        code = payload.get("error", "?")
        shed_by_code[code] = shed_by_code.get(code, 0) + 1
    summary = {
        "sent": report.sent,
        "served": len(report.ok),
        "shed": shed_by_code,
        "unanswered": len(report.unanswered),
        "elapsed_s": round(report.elapsed_s, 3),
        "p50_ms": round(report.percentile_ms(0.50), 3),
        "p99_ms": round(report.percentile_ms(0.99), 3),
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(
            f"sent {summary['sent']}: {summary['served']} served, "
            f"{sum(shed_by_code.values())} shed {shed_by_code}, "
            f"{summary['unanswered']} unanswered in "
            f"{summary['elapsed_s']}s "
            f"(p50 {summary['p50_ms']}ms, p99 {summary['p99_ms']}ms)"
        )
    return 1 if report.unanswered else 0


def _q(quantiles: dict, key: str) -> object:
    value = quantiles.get(key)
    return "-" if value is None else value


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    # --log-json reads progress counts back from the registry, so it
    # turns observability on even without an export file.
    exporting = bool(
        metrics_out or trace_out or getattr(args, "log_json", False)
    )
    if exporting:
        obs.reset()
        obs.enable()
    handlers = {
        "simulate": cmd_simulate,
        "align": cmd_align,
        "longread": cmd_longread,
        "overlap": cmd_overlap,
        "analyze": cmd_analyze,
        "score": cmd_score,
        "bench": cmd_bench,
        "stats": cmd_stats,
        "serve": cmd_serve,
        "client": cmd_client,
        "index": cmd_index,
    }
    try:
        code = handlers[args.command](args)
    finally:
        export_error = None
        if exporting:
            try:
                if metrics_out:
                    obs.get_registry().write_json(metrics_out)
                    print(f"wrote metrics snapshot to {metrics_out}")
                if trace_out:
                    obs.get_tracer().export_chrome(trace_out)
                    print(f"wrote Chrome trace to {trace_out}")
            except OSError as exc:
                export_error = exc
            finally:
                obs.disable()
        if export_error is not None:
            print(
                f"error: cannot write snapshot: {export_error}",
                file=sys.stderr,
            )
    if export_error is not None:
        return 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
