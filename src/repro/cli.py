"""Command-line interface: simulate workloads and align reads.

Usage::

    python -m repro.cli simulate --length 50000 --reads 200 \
        --out-reference ref.fasta --out-reads reads.fastq

    python -m repro.cli align --reference ref.fasta --reads reads.fastq \
        --out out.sam --engine seedex --band 41

    python -m repro.cli analyze --reference ref.fasta --reads reads.fastq

The ``align`` command is the end-to-end pipeline with the SeedEx
engine by default — its output is bit-identical to ``--engine full``
at any ``--band``.  ``analyze`` reports the check passing rates the
chosen band would achieve on the given workload.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.aligner.engines import (
    FullBandEngine,
    PlainBandedEngine,
    SeedExEngine,
)
from repro.aligner.pipeline import Aligner
from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.genome.sam import write_sam
from repro.genome.sequence import decode, encode
from repro.genome.synth import (
    CLEAN,
    PLATINUM_LIKE,
    ReadSimulator,
    synthesize_reference,
)

PROFILES = {"platinum": PLATINUM_LIKE, "clean": CLEAN}


def build_parser() -> argparse.ArgumentParser:
    """Build the repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic workload")
    sim.add_argument("--length", type=int, default=50_000)
    sim.add_argument("--reads", type=int, default=100)
    sim.add_argument("--profile", choices=sorted(PROFILES), default="platinum")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out-reference", required=True)
    sim.add_argument("--out-reads", required=True)
    sim.add_argument(
        "--paired",
        action="store_true",
        help="write an interleaved paired-end FASTQ (FR, insert ~400)",
    )

    aln = sub.add_parser("align", help="align reads to a reference")
    aln.add_argument("--reference", required=True)
    aln.add_argument("--reads", required=True)
    aln.add_argument("--out", required=True)
    aln.add_argument(
        "--engine", choices=("seedex", "full", "banded"), default="seedex"
    )
    aln.add_argument("--band", type=int, default=41)
    aln.add_argument("--seeding", choices=("smem", "kmer"), default="kmer")
    aln.add_argument(
        "--paired",
        action="store_true",
        help="treat the FASTQ as interleaved pairs (mate rescue on)",
    )

    ana = sub.add_parser("analyze", help="check passing rates for a band")
    ana.add_argument("--reference", required=True)
    ana.add_argument("--reads", required=True)
    ana.add_argument("--band", type=int, default=41)
    ana.add_argument("--seeding", choices=("smem", "kmer"), default="kmer")
    return parser


def _load_reference(path: str) -> tuple[str, np.ndarray]:
    records = read_fasta(path)
    if not records:
        raise SystemExit(f"error: {path} contains no FASTA records")
    if len(records) > 1:
        print(
            f"warning: using first of {len(records)} reference records",
            file=sys.stderr,
        )
    rec = records[0]
    return rec.name, encode(rec.sequence)


def _make_engine(args: argparse.Namespace):
    if args.engine == "seedex":
        return SeedExEngine(band=args.band)
    if args.engine == "full":
        return FullBandEngine()
    return PlainBandedEngine(args.band)


def cmd_simulate(args: argparse.Namespace) -> int:
    """Generate a synthetic reference + FASTQ workload."""
    rng = np.random.default_rng(args.seed)
    reference = synthesize_reference(args.length, rng)
    records: list[FastqRecord] = []
    if args.paired:
        from repro.aligner.paired import simulate_pairs

        for pair, _, _ in simulate_pairs(
            reference, args.reads, rng, profile=PROFILES[args.profile]
        ):
            for suffix, codes in (("/1", pair.first), ("/2", pair.second)):
                records.append(
                    FastqRecord(
                        pair.name + suffix,
                        decode(codes),
                        "I" * len(codes),
                    )
                )
    else:
        sim = ReadSimulator(
            reference, PROFILES[args.profile], seed=args.seed
        )
        records = [
            FastqRecord(r.name, r.sequence, "I" * len(r.codes))
            for r in sim.simulate(args.reads)
        ]
    with open(args.out_reference, "w") as handle:
        write_fasta(handle, [FastaRecord("chr1", decode(reference))])
    with open(args.out_reads, "w") as handle:
        write_fastq(handle, records)
    print(
        f"wrote {args.length} bp reference to {args.out_reference} and "
        f"{len(records)} reads to {args.out_reads}"
    )
    return 0


def cmd_align(args: argparse.Namespace) -> int:
    """Align a FASTQ against a FASTA reference, write SAM."""
    name, reference = _load_reference(args.reference)
    reads = read_fastq(args.reads)
    engine = _make_engine(args)
    start = time.perf_counter()
    if args.paired:
        from repro.aligner.paired import PairedAligner, ReadPair

        if len(reads) % 2:
            raise SystemExit(
                "error: --paired needs an even number of reads "
                "(interleaved mates)"
            )
        paired = PairedAligner(reference, engine, seeding=args.seeding)
        paired.aligner.reference_name = name
        records = []
        for first, second in zip(reads[0::2], reads[1::2]):
            pname = first.name.rstrip("/1")
            r1, r2 = paired.align_pair(
                ReadPair(pname, encode(first.sequence),
                         encode(second.sequence))
            )
            records.extend([r1, r2])
        elapsed = time.perf_counter() - start
        with open(args.out, "w") as handle:
            write_sam(handle, records, name, len(reference))
        mapped = sum(1 for r in records if not r.is_unmapped)
        print(
            f"aligned {len(records) // 2} pairs ({mapped} mates mapped, "
            f"{paired.stats.proper} proper, {paired.stats.rescued} "
            f"rescued) in {elapsed:.1f}s with engine {engine.name}"
        )
        return 0
    aligner = Aligner(
        reference,
        engine,
        seeding=args.seeding,
        reference_name=name,
    )
    records = [
        aligner.align_read(encode(r.sequence), r.name) for r in reads
    ]
    elapsed = time.perf_counter() - start
    with open(args.out, "w") as handle:
        write_sam(handle, records, name, len(reference))
    mapped = sum(1 for r in records if not r.is_unmapped)
    print(
        f"aligned {len(records)} reads ({mapped} mapped) in "
        f"{elapsed:.1f}s with engine {engine.name}"
    )
    if isinstance(engine, SeedExEngine):
        stats = engine.stats
        print(
            f"check passing rate {stats.passing_rate:.1%} "
            f"({stats.reruns} full-band reruns of {stats.total} "
            "extensions)"
        )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Report check passing rates for a workload at one band."""
    name, reference = _load_reference(args.reference)
    reads = read_fastq(args.reads)
    engine = SeedExEngine(band=args.band)
    aligner = Aligner(
        reference, engine, seeding=args.seeding, reference_name=name
    )
    for r in reads:
        aligner.align_read(encode(r.sequence), r.name)
    stats = engine.stats
    print(f"band: {args.band}")
    print(f"extensions: {stats.total}")
    print(f"threshold-only passing rate: {stats.threshold_only_rate:.1%}")
    print(f"overall passing rate: {stats.passing_rate:.1%}")
    print(f"rerun fraction: {stats.reruns / max(1, stats.total):.1%}")
    for outcome, count in sorted(
        stats.by_outcome.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {outcome.name:12s} {count}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "align": cmd_align,
        "analyze": cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
