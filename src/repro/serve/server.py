"""The resident alignment server behind ``repro serve``.

One process owns the preloaded reference and index; many clients
stream ALIGN requests at it over a local TCP socket.  Threads:

* an **accept** thread hands each connection a
  :class:`~repro.serve.session.ClientSession` and a reader thread;
* **reader** threads parse frames and run the cheap fast path —
  quota draw, WAL admit, bounded-queue admission — answering every
  rejection inline in microseconds;
* a single **batcher** thread pops micro-batches
  (:class:`~repro.aligner.batching.MicroBatchPolicy`), drops expired
  tickets before they cost a wave, and feeds survivors through the
  existing wave scheduler (:func:`repro.aligner.waves.align_window`),
  answering each request from the per-read completion callback.

Degradation is always explicit and typed: overload sheds with
``overloaded`` + a retry-after hint, an empty token bucket sheds with
``quota_exceeded``, a queue-expired deadline answers
``deadline_exceeded``, an open circuit breaker answers
``breaker_open`` instead of piling waves onto a failing kernel, and a
drain answers ``draining``.  Admitted requests are written ahead to
the request WAL (:class:`~repro.durability.wal.RequestWAL`) so a
crashed server names exactly what it lost.  Accepted responses carry
the same SAM body line batch-mode ``repro align`` would emit —
byte-identical, enforced by ``tests/serve``.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.aligner.batching import MicroBatchPolicy
from repro.aligner.waves import align_window
from repro.durability.breaker import BreakerPolicy, CircuitBreaker
from repro.durability.runner import GracefulShutdown
from repro.durability.wal import WAL_NAME, RequestWAL
from repro.genome.sequence import encode as encode_seq
from repro.obs import names as mn
from repro.serve.admission import DEFAULT_CAPACITY, AdmissionQueue, Ticket
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_BREAKER_OPEN,
    E_DEADLINE,
    E_ENGINE,
    E_OVERLOADED,
    E_QUOTA,
    PROTOCOL_VERSION,
    VERB_PING,
    VERB_STATUS,
    error,
    ok_align,
    ok_pong,
    ok_status,
)
from repro.serve.quotas import QuotaTable
from repro.serve.session import ClientSession


@dataclass
class ServeConfig:
    """Everything ``repro serve`` exposes as flags, in one place."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 binds an ephemeral port; read it back from ``port_file``."""
    port_file: str | None = None
    queue_capacity: int = DEFAULT_CAPACITY
    high_water: int | None = None
    max_batch: int = 64
    linger_ms: float = 20.0
    default_deadline_ms: int | None = None
    """Deadline applied to requests that do not carry their own."""
    quota_rate: float | None = None
    """Per-client tokens per second; ``None`` disables quotas."""
    quota_burst: float | None = None
    wal_dir: str | None = None
    breaker_threshold: int = 5
    breaker_probe_interval: int = 32


class ServerStats:
    """The server's authoritative counters, behind one lock.

    The obs registry's counters are not thread-safe, so the server
    keeps its own books and mirrors every increment to the registry
    *inside* this lock — ``STATUS`` reads here, dashboards read there,
    and the two agree.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self.admitted = 0
        self.served = 0
        self.timeouts = 0
        self.engine_errors = 0
        self.disconnects = 0
        self.waves = 0
        self.reads_batched = 0

    def _mirror(self, name: str, help_text: str, amount: int, **labels):
        if obs.enabled():
            obs.get_registry().counter(name, help_text, **labels).inc(amount)

    def count_request(self, verb: str) -> None:
        """One parsed request arrived."""
        with self._lock:
            self.requests[verb] = self.requests.get(verb, 0) + 1
            self._mirror(
                mn.SERVE_REQUESTS_TOTAL, "requests by verb", 1, verb=verb
            )

    def count_shed(self, reason: str) -> None:
        """One request rejected before batching (typed reason)."""
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1
            self._mirror(
                mn.SERVE_REQUESTS_SHED, "requests shed", 1, reason=reason
            )

    def count_admitted(self) -> None:
        """One ALIGN request entered the queue."""
        with self._lock:
            self.admitted += 1

    def count_served(self, latency_s: float, sent: bool) -> None:
        """One ALIGN request answered with a SAM line."""
        with self._lock:
            self.served += 1
            self._mirror(mn.SERVE_REQUESTS_SERVED, "requests served", 1)
            if not sent:
                self.disconnects += 1
                self._mirror(
                    mn.SERVE_CLIENT_DISCONNECTS, "client disconnects", 1
                )
            if obs.enabled():
                obs.get_registry().histogram(
                    mn.SERVE_REQUEST_SECONDS, "request latency"
                ).observe(latency_s)

    def count_timeout(self) -> None:
        """One admitted request expired before batching."""
        with self._lock:
            self.timeouts += 1
            self._mirror(mn.SERVE_REQUESTS_TIMEOUT, "deadline drops", 1)

    def count_engine_error(self, reads: int) -> None:
        """One wave raised; its requests were answered with a typed error."""
        with self._lock:
            self.engine_errors += reads

    def count_wave(self, reads: int, depth: int) -> None:
        """One micro-batch wave dispatched."""
        with self._lock:
            self.waves += 1
            self.reads_batched += reads
            if obs.enabled():
                reg = obs.get_registry()
                reg.histogram(
                    mn.SERVE_BATCH_READS, "reads per server wave"
                ).observe(reads)
                reg.gauge(
                    mn.SERVE_QUEUE_DEPTH, "admission queue depth"
                ).set(depth)

    def count_wal(self, op: str) -> None:
        """One WAL record appended."""
        with self._lock:
            self._mirror(mn.SERVE_WAL_RECORDS, "WAL records", 1, op=op)

    def snapshot(self) -> dict:
        """A consistent copy of every counter (the STATUS payload)."""
        with self._lock:
            return {
                "requests": dict(self.requests),
                "shed": dict(self.shed),
                "admitted": self.admitted,
                "served": self.served,
                "timeouts": self.timeouts,
                "engine_errors": self.engine_errors,
                "disconnects": self.disconnects,
                "waves": self.waves,
                "reads_batched": self.reads_batched,
            }


class AlignmentServer:
    """The resident server: accept, admit, batch, answer, drain."""

    def __init__(
        self,
        aligner,
        config: ServeConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.aligner = aligner
        self.config = config or ServeConfig()
        self.clock = clock
        self.policy = MicroBatchPolicy(
            max_batch=self.config.max_batch,
            linger_ms=self.config.linger_ms,
        )
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            high_water=self.config.high_water,
        )
        self.quotas = QuotaTable(
            self.config.quota_rate, self.config.quota_burst
        )
        self.breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=self.config.breaker_threshold,
                probe_interval=self.config.breaker_probe_interval,
            ),
            registry=obs.get_registry() if obs.enabled() else None,
        )
        self.stats = ServerStats()
        self.fault_plan = None
        """Optional :class:`repro.faults.netfaults.NetFaultPlan` applied
        to every new session (the chaos seam)."""
        self.wal: RequestWAL | None = None
        self.lost_on_restart: list[dict] = []
        self.port: int | None = None
        self._listen: socket.socket | None = None
        self._sessions: dict[int, ClientSession] = {}
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._batcher: threading.Thread | None = None
        self._accepter: threading.Thread | None = None
        self._started_at: float = 0.0
        self._ema_read_s: float | None = None
        self._drained = threading.Event()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> int:
        """Bind, recover the previous WAL, spin up threads; returns port."""
        cfg = self.config
        if cfg.wal_dir is not None:
            prior = Path(cfg.wal_dir) / WAL_NAME
            replay = RequestWAL.scan(prior)
            self.lost_on_restart = replay.lost
            self.wal = RequestWAL.open_dir(cfg.wal_dir)
        listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listen.bind((cfg.host, cfg.port))
        listen.listen(128)
        self._listen = listen
        self.port = listen.getsockname()[1]
        if cfg.port_file:
            Path(cfg.port_file).write_text(f"{self.port}\n")
        self._started_at = self.clock()
        self._batcher = threading.Thread(
            target=self._batcher_loop, name="serve-batcher", daemon=True
        )
        self._batcher.start()
        self._accepter = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accepter.start()
        return self.port

    def serve_forever(self, poll_s: float = 0.05) -> int:
        """Block until SIGINT/SIGTERM, then drain gracefully; exit 0.

        The first signal stops admission and lets the batcher flush
        every in-flight and queued request (stragglers get answers);
        a second signal falls through to the previous handler.
        """
        with GracefulShutdown() as shutdown:
            while not shutdown() and not self._drained.is_set():
                time.sleep(poll_s)
        self.shutdown()
        return 0

    def drain(self) -> None:
        """Stop admitting; new ALIGNs get typed ``draining`` answers."""
        self.queue.close()

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Drain, flush the batcher, answer stragglers, tear down."""
        self.drain()
        listen, self._listen = self._listen, None
        if listen is not None:
            try:
                listen.close()
            except OSError:
                pass
        if self._batcher is not None:
            self._batcher.join(timeout=timeout_s)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        if self.wal is not None:
            self.wal.sync()
            self.wal.close()

    @property
    def draining(self) -> bool:
        """Whether admission has been closed."""
        return self.queue.closed

    # -- accept / reader side -------------------------------------------

    def _accept_loop(self) -> None:
        """Accept connections until the listen socket is torn down."""
        while True:
            listen = self._listen
            if listen is None:
                return
            try:
                conn, addr = listen.accept()
            except OSError:
                return
            session = ClientSession(
                conn, peer=f"{addr[0]}:{addr[1]}",
                session_id=next(self._session_ids),
            )
            session.fault_plan = self.fault_plan
            with self._sessions_lock:
                self._sessions[session.session_id] = session
                active = len(self._sessions)
            self._set_active_gauge(active)
            threading.Thread(
                target=self._client_loop,
                args=(session,),
                name=f"serve-client-{session.session_id}",
                daemon=True,
            ).start()

    def _client_loop(self, session: ClientSession) -> None:
        """Run one connection's reader; always unregisters on exit."""
        try:
            session.run_reader(self._on_request, self._on_protocol_error)
        finally:
            with self._sessions_lock:
                self._sessions.pop(session.session_id, None)
                active = len(self._sessions)
            self._set_active_gauge(active)
            session.close()

    def _set_active_gauge(self, active: int) -> None:
        if obs.enabled():
            obs.get_registry().gauge(
                mn.SERVE_CLIENTS_ACTIVE, "open client connections"
            ).set(active)

    def _on_protocol_error(self, session: ClientSession, exc) -> None:
        """Answer a malformed frame with a typed ``bad_request``."""
        self.stats.count_shed(E_BAD_REQUEST)
        session.send(error(None, E_BAD_REQUEST, str(exc)))

    def _on_request(self, session: ClientSession, request) -> None:
        """The reader-thread fast path: answer or admit, never block."""
        self.stats.count_request(request.verb)
        if request.verb == VERB_PING:
            session.send(ok_pong(request.id))
            return
        if request.verb == VERB_STATUS:
            session.send(ok_status(request.id, self.status()))
            return
        # ALIGN.
        now = self.clock()
        quota = self.quotas.take(request.client, now)
        if not quota.allowed:
            self.stats.count_shed(E_QUOTA)
            session.send(
                error(
                    request.id,
                    E_QUOTA,
                    f"client {request.client or '<anonymous>'!r} is "
                    "over its request quota",
                    retry_after_ms=quota.retry_after_ms,
                )
            )
            return
        wal_seq = None
        if self.wal is not None:
            wal_seq = self.wal.admit(
                request.id, request.client, request.name
            )
            self.stats.count_wal("admit")
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        ticket = Ticket(
            request=request,
            session=session,
            admitted_at=now,
            deadline=(
                now + deadline_ms / 1000.0
                if deadline_ms is not None
                else None
            ),
            wal_seq=wal_seq,
        )
        decision = self.queue.try_admit(ticket)
        if decision.admitted:
            self.stats.count_admitted()
            return
        # Shed: the request never consumed queue space, so retire its
        # WAL record immediately — a shed request is answered, not lost.
        self._wal_done(request.id)
        self.stats.count_shed(decision.code)
        retry = None
        if decision.code == E_OVERLOADED:
            retry = self._retry_hint(decision.depth)
            message = (
                f"admission queue at high-water mark "
                f"({decision.depth}/{self.queue.high_water})"
            )
        else:
            message = "server is draining; no new requests admitted"
        session.send(
            error(request.id, decision.code, message, retry_after_ms=retry)
        )

    def _retry_hint(self, depth: int) -> int:
        """Expected queue drain time at ``depth``, in milliseconds."""
        per_read = self._ema_read_s if self._ema_read_s else 0.02
        return max(1, min(5000, int(1000.0 * per_read * max(1, depth))))

    # -- batcher side ---------------------------------------------------

    def _batcher_loop(self) -> None:
        """Pop waves until drained; the only thread touching the engine."""
        while True:
            wave = self.queue.pop_wave(
                self.policy.max_batch, self.policy.linger_s, self.clock
            )
            if wave.closed:
                break
            for ticket in wave.expired:
                self.stats.count_timeout()
                self._finish_error(
                    ticket,
                    E_DEADLINE,
                    "deadline expired before the request was batched",
                )
            if wave.batch:
                self._run_wave(wave.batch)
            if self.wal is not None:
                self.wal.sync()
        self._drained.set()

    def _run_wave(self, tickets: list[Ticket]) -> None:
        """Align one micro-batch behind the circuit breaker."""
        self.stats.count_wave(len(tickets), self.queue.depth())
        if not self.breaker.allow():
            for ticket in tickets:
                self.stats.count_shed(E_BREAKER_OPEN)
                self._finish_error(
                    ticket,
                    E_BREAKER_OPEN,
                    "alignment engine circuit breaker is open",
                    retry_after_ms=250,
                )
            return
        window = [
            (t.request.name, encode_seq(t.request.seq.upper()))
            for t in tickets
        ]
        began = self.clock()
        try:
            align_window(
                self.aligner,
                window,
                on_record=lambda i, record: self._finish_ok(
                    tickets[i], record
                ),
            )
        except Exception as exc:  # noqa: BLE001 — wave must not kill serve
            self.breaker.record_failure()
            self.stats.count_engine_error(len(tickets))
            for ticket in tickets:
                self._finish_error(
                    ticket,
                    E_ENGINE,
                    f"wave failed: {type(exc).__name__}: {exc}",
                )
            return
        self.breaker.record_success()
        per_read = (self.clock() - began) / max(1, len(tickets))
        if self._ema_read_s is None:
            self._ema_read_s = per_read
        else:
            self._ema_read_s = 0.8 * self._ema_read_s + 0.2 * per_read

    def _finish_ok(self, ticket: Ticket, record) -> None:
        """Answer one served request; retire its WAL record after."""
        sent = ticket.session.send(
            ok_align(ticket.request.id, record.to_line())
        )
        self._wal_done(ticket.request.id)
        self.stats.count_served(
            self.clock() - ticket.admitted_at, sent=sent
        )

    def _finish_error(
        self,
        ticket: Ticket,
        code: str,
        message: str,
        retry_after_ms: int | None = None,
    ) -> None:
        """Answer one admitted-then-rejected request; retire its WAL."""
        ticket.session.send(
            error(
                ticket.request.id,
                code,
                message,
                retry_after_ms=retry_after_ms,
            )
        )
        self._wal_done(ticket.request.id)

    def _wal_done(self, rid: str) -> None:
        if self.wal is not None:
            self.wal.done(rid)
            self.stats.count_wal("done")

    # -- health ---------------------------------------------------------

    def status(self) -> dict:
        """The ``STATUS`` payload: state, queue, breaker, counters.

        ``index`` names the persistent index artifact the aligner
        seeds from (fingerprint, schema, mode), or ``None`` when the
        seeding structures were built in-process — so operators can
        confirm *which* index a resident server is answering with.
        """
        return {
            "protocol": PROTOCOL_VERSION,
            "index": getattr(self.aligner, "index_meta", None),
            "state": "draining" if self.queue.closed else "serving",
            "uptime_s": round(self.clock() - self._started_at, 3),
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "high_water": self.queue.high_water,
            "max_batch": self.policy.max_batch,
            "linger_ms": self.policy.linger_ms,
            "breaker": self.breaker.state,
            "quotas_enabled": self.quotas.enabled,
            "wal": self.wal is not None,
            "lost_on_restart": [
                rec.get("id") for rec in self.lost_on_restart
            ],
            "counters": self.stats.snapshot(),
        }
