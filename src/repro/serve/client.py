"""The ``repro client`` helper: a pipelined load generator.

Tests, the CI smoke job, and the latency benchmark all need the same
thing — open N connections to a running ``repro serve``, fire a burst
of ALIGN requests down each, and account for every response by id.
:func:`run_load` is that harness; :func:`request_status` is the
one-shot ``STATUS`` probe the smoke job uses for health checks.

The generator is deliberately rude: each connection writes its whole
burst before reading anything (pipelining), which is exactly the
offered-load shape that exercises the server's admission queue and
load shedding.  Responses are matched by request id, never by order,
so shed rejections interleaved with served answers are fine.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.serve.protocol import align_request, encode, status_request


@dataclass
class LoadReport:
    """Everything one :func:`run_load` burst produced."""

    sent: int = 0
    ok: dict[str, str] = field(default_factory=dict)
    """Request id -> SAM body line, for every served request."""
    errors: dict[str, dict] = field(default_factory=dict)
    """Request id -> full error payload, for every typed rejection."""
    unanswered: list[str] = field(default_factory=list)
    """Request ids the connection closed on before answering."""
    latencies_ms: list[float] = field(default_factory=list)
    elapsed_s: float = 0.0

    def shed(self, code: str) -> int:
        """How many rejections carried the given typed error code."""
        return sum(
            1 for e in self.errors.values() if e.get("error") == code
        )

    @property
    def shed_total(self) -> int:
        """Total typed rejections of any code."""
        return len(self.errors)

    def merge(self, other: "LoadReport") -> None:
        """Fold another connection's report into this one."""
        self.sent += other.sent
        self.ok.update(other.ok)
        self.errors.update(other.errors)
        self.unanswered.extend(other.unanswered)
        self.latencies_ms.extend(other.latencies_ms)
        self.elapsed_s = max(self.elapsed_s, other.elapsed_s)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 1] over answered requests."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[index]


def _drive_connection(
    host: str,
    port: int,
    items: list[tuple[str, str, str]],
    client: str,
    deadline_ms: int | None,
    timeout_s: float,
    report: LoadReport,
) -> None:
    """Send one connection's burst, then collect one answer per id."""
    started = time.perf_counter()
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError:
        report.unanswered.extend(rid for rid, _, _ in items)
        return
    try:
        burst = b"".join(
            encode(
                align_request(
                    rid, name, seq, client=client, deadline_ms=deadline_ms
                )
            )
            for rid, name, seq in items
        )
        sent_at = time.perf_counter()
        sock.sendall(burst)
        report.sent = len(items)
        pending = {rid for rid, _, _ in items}
        stream = sock.makefile("rb")
        while pending:
            try:
                line = stream.readline()
            except OSError:
                break
            if not line:
                break
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            rid = message.get("id")
            if rid not in pending:
                continue
            pending.discard(rid)
            report.latencies_ms.append(
                1000.0 * (time.perf_counter() - sent_at)
            )
            if message.get("ok"):
                report.ok[rid] = message.get("sam", "")
            else:
                report.errors[rid] = message
        report.unanswered.extend(sorted(pending))
    except OSError:
        pass
    finally:
        try:
            sock.close()
        except OSError:
            pass
        report.elapsed_s = time.perf_counter() - started


def run_load(
    host: str,
    port: int,
    reads: list[tuple[str, str]],
    connections: int = 1,
    client: str = "",
    deadline_ms: int | None = None,
    timeout_s: float = 60.0,
) -> LoadReport:
    """Fire ``reads`` (``(name, seq)`` pairs) at a server; account all.

    Reads are dealt round-robin across ``connections`` sockets; each
    connection pipelines its whole share before reading responses.
    Request ids are ``{client}-{index}`` so every read of the burst is
    individually accountable in the report (and in the server's WAL).
    """
    if connections < 1:
        raise ValueError("connections must be at least 1")
    shares: list[list[tuple[str, str, str]]] = [
        [] for _ in range(connections)
    ]
    for index, (name, seq) in enumerate(reads):
        rid = f"{client or 'load'}-{index}"
        shares[index % connections].append((rid, name, seq))
    reports = [LoadReport() for _ in shares]
    threads = [
        threading.Thread(
            target=_drive_connection,
            args=(host, port, share, client, deadline_ms, timeout_s, rep),
            daemon=True,
        )
        for share, rep in zip(shares, reports)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = LoadReport()
    for rep in reports:
        total.merge(rep)
    total.elapsed_s = time.perf_counter() - began
    return total


def request_status(
    host: str, port: int, timeout_s: float = 10.0
) -> dict:
    """One-shot ``STATUS`` probe; returns the server's health payload."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(encode(status_request()))
        stream = sock.makefile("rb")
        line = stream.readline()
    message = json.loads(line)
    if not message.get("ok"):
        raise RuntimeError(f"STATUS failed: {message!r}")
    return message["status"]
