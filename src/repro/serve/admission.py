"""Bounded admission with load shedding, deadlines, and drain.

The :class:`AdmissionQueue` is the server's only buffer between client
reader threads (producers) and the single batcher thread (consumer).
Its contract is the robustness envelope of ``repro serve``:

* **bounded** — at most ``capacity`` tickets wait; memory cannot grow
  with offered load;
* **load shedding** — a ticket arriving at depth >= ``high_water`` is
  rejected *immediately* (:data:`~repro.serve.protocol.E_OVERLOADED`)
  instead of queued — an overloaded server answers in microseconds
  with a retry-after hint rather than timing everyone out;
* **deadlines** — each ticket may carry an absolute monotonic
  deadline; expired tickets are dropped at pop time, *before* the
  wave scheduler ever sees them, and handed back to the server for a
  typed :data:`~repro.serve.protocol.E_DEADLINE` response;
* **drain** — :meth:`close` stops admission (typed
  :data:`~repro.serve.protocol.E_DRAINING` rejections) while the
  batcher keeps popping until the queue is empty, so every admitted
  request is answered before shutdown.

All time is caller-supplied monotonic seconds; the queue itself never
reads a clock, which keeps the shedding/deadline policies directly
unit-testable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import E_DRAINING, E_OVERLOADED, Request

DEFAULT_CAPACITY = 256
"""Default admission queue capacity (tickets)."""


@dataclass
class Ticket:
    """One admitted ALIGN request waiting for (or riding) a wave."""

    request: Request
    session: Any
    admitted_at: float
    deadline: float | None = None
    wal_seq: int | None = None

    def expired(self, now: float) -> bool:
        """Whether the ticket's deadline has passed at ``now``."""
        return self.deadline is not None and now >= self.deadline


@dataclass(frozen=True)
class Decision:
    """The outcome of one admission attempt."""

    admitted: bool
    code: str | None = None
    depth: int = 0


@dataclass
class Wave:
    """What one :meth:`AdmissionQueue.pop_wave` produced."""

    batch: list[Ticket] = field(default_factory=list)
    expired: list[Ticket] = field(default_factory=list)
    closed: bool = False
    """True when the queue is drained *and* closed: the batcher's
    signal to exit its loop."""


class AdmissionQueue:
    """The bounded, shedding, drainable ticket queue (thread-safe)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        high_water: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.high_water = (
            int(high_water) if high_water is not None else self.capacity
        )
        if not 1 <= self.high_water <= self.capacity:
            raise ValueError("high_water must be in [1, capacity]")
        self._items: list[Ticket] = []
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side --------------------------------------------------

    def try_admit(self, ticket: Ticket) -> Decision:
        """Admit ``ticket`` or shed it; never blocks.

        Rejections carry the typed code the caller turns into a wire
        response: ``draining`` once :meth:`close` ran, ``overloaded``
        at or past the high-water mark.
        """
        with self._nonempty:
            depth = len(self._items)
            if self._closed:
                return Decision(False, E_DRAINING, depth)
            if depth >= self.high_water:
                return Decision(False, E_OVERLOADED, depth)
            self._items.append(ticket)
            self._nonempty.notify()
            return Decision(True, None, depth + 1)

    def depth(self) -> int:
        """Tickets currently waiting."""
        with self._lock:
            return len(self._items)

    # -- consumer side --------------------------------------------------

    def pop_wave(
        self, max_batch: int, linger_s: float, clock
    ) -> Wave:
        """Pop the next micro-batch for the batcher thread.

        Blocks until at least one ticket arrived or the queue was
        closed, then lingers up to ``linger_s`` from the *first*
        ticket's availability for the batch to fill to ``max_batch``
        (close() cuts the linger short so drain is prompt).  Expired
        tickets are separated out, never batched.

        ``clock`` is a monotonic-seconds callable
        (``time.monotonic`` in production, scriptable in tests).
        """
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        with self._nonempty:
            while not self._items and not self._closed:
                self._nonempty.wait(timeout=0.25)
            if not self._items and self._closed:
                return Wave(closed=True)
            now = clock()
            linger_deadline = now + max(0.0, linger_s)
            while (
                len(self._items) < max_batch
                and not self._closed
                and now < linger_deadline
            ):
                self._nonempty.wait(timeout=linger_deadline - now)
                now = clock()
            taken = self._items[:max_batch]
            del self._items[: len(taken)]
        now = clock()
        wave = Wave()
        for ticket in taken:
            if ticket.expired(now):
                wave.expired.append(ticket)
            else:
                wave.batch.append(ticket)
        return wave

    # -- drain ----------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake the batcher to drain what remains."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (draining)."""
        return self._closed
