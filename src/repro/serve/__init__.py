"""Alignment-as-a-service: the resident ``repro serve`` subsystem.

The batch CLI pays reference + index setup on every invocation; this
package keeps them resident.  ``repro serve`` preloads the reference
once, listens on a local socket, and micro-batches alignment requests
from many concurrent clients into the existing deferred-extension
wave scheduler (:mod:`repro.aligner.waves`) as one continuous stream.

The robustness envelope is the point, not an afterthought:

* :mod:`repro.serve.protocol` — versioned newline-delimited JSON
  request/response schema with typed error codes;
* :mod:`repro.serve.admission` — a bounded admission queue with
  explicit load shedding (503-style rejection plus a retry-after
  hint) and per-request deadlines enforced *before* a read is ever
  batched into a wave;
* :mod:`repro.serve.quotas` — per-client token-bucket rate limiting;
* :mod:`repro.serve.session` — one client connection's reader loop
  and serialized writer, tolerant of disconnects and stalls;
* :mod:`repro.serve.server` — the resident server: accept loop,
  single batcher thread feeding waves, circuit-breaker-fronted
  dispatch, write-ahead request log
  (:class:`~repro.durability.wal.RequestWAL`), SIGINT/SIGTERM
  graceful drain, and the ``STATUS`` health verb;
* :mod:`repro.serve.client` — the ``repro client`` helper used by
  tests, the CI smoke job, and the latency benchmark as a load
  generator.

Responses for accepted requests are byte-identical to batch-mode
``repro align`` output for the same reads — the differential suite in
``tests/serve`` holds the server to that bar.  See ``docs/serve.md``.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionQueue, Decision, Ticket
from repro.serve.client import LoadReport, request_status, run_load
from repro.serve.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    parse_request,
)
from repro.serve.quotas import QuotaTable, TokenBucket
from repro.serve.server import AlignmentServer, ServeConfig

__all__ = [
    "AdmissionQueue",
    "AlignmentServer",
    "Decision",
    "ERROR_CODES",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QuotaTable",
    "Request",
    "ServeConfig",
    "Ticket",
    "TokenBucket",
    "parse_request",
    "request_status",
    "run_load",
]
