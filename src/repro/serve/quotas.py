"""Per-client token-bucket quotas for the admission gate.

One :class:`TokenBucket` per client id: tokens refill continuously at
``rate`` per second up to ``burst``; each admitted request takes one
token, and an empty bucket rejects with a retry-after hint derived
from the refill rate — the client is told exactly how long to back
off instead of guessing.

Buckets are created lazily by the :class:`QuotaTable` and evicted
once idle past a horizon, so a server that has seen a million distinct
client ids does not hold a million buckets forever.  All time is
supplied by the caller (monotonic seconds), which keeps the policy
deterministic under test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class QuotaDecision:
    """The outcome of one bucket draw."""

    allowed: bool
    retry_after_ms: int = 0


class TokenBucket:
    """A continuously-refilled token bucket (``rate``/s, cap ``burst``)."""

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = float(now)

    def take(self, now: float) -> QuotaDecision:
        """Try to take one token at monotonic time ``now`` (seconds)."""
        elapsed = max(0.0, now - self.last)
        self.last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return QuotaDecision(allowed=True)
        deficit = 1.0 - self.tokens
        return QuotaDecision(
            allowed=False,
            retry_after_ms=max(1, int(1000.0 * deficit / self.rate)),
        )


class QuotaTable:
    """Lazily-created per-client buckets behind one lock.

    ``rate=None`` disables quotas entirely (every draw is allowed),
    which is the server default — quotas are an operator opt-in.
    Requests without a client id share the ``""`` bucket, so an
    anonymous flood is still bounded.
    """

    IDLE_EVICT_S = 300.0
    """Idle seconds after which a client's bucket is dropped."""

    def __init__(self, rate: float | None, burst: float | None = None) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else (rate or 1.0)
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether quotas are active at all."""
        return self.rate is not None

    def take(self, client: str, now: float) -> QuotaDecision:
        """Draw one token for ``client`` at monotonic ``now``."""
        if self.rate is None:
            return QuotaDecision(allowed=True)
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now=now)
                self._buckets[client] = bucket
            decision = bucket.take(now)
            if len(self._buckets) > 1024:
                self._evict(now)
            return decision

    def _evict(self, now: float) -> None:
        """Drop buckets idle past the horizon (caller holds the lock)."""
        stale = [
            key
            for key, bucket in self._buckets.items()
            if now - bucket.last > self.IDLE_EVICT_S
        ]
        for key in stale:
            del self._buckets[key]
