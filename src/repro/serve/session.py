"""One client connection: framed reader loop and serialized writer.

A :class:`ClientSession` owns the accepted socket.  The server runs
:meth:`run_reader` on a per-connection thread — it reads newline
frames, parses them through the strict protocol validator, and hands
each outcome to server callbacks — while responses are written from
*other* threads (the batcher, the admission fast path) through
:meth:`send`, which serializes writes behind a lock so concurrent
rejections and wave results never interleave bytes on the wire.

Disconnect tolerance is the design center: a client that vanishes
mid-flight must cost the server nothing.  Every socket error flips the
session dead and is swallowed; the batcher simply sees ``send`` return
``False`` and moves on.  The chaos layer's network fault plan
(:mod:`repro.faults.netfaults`) hooks ``send`` to rehearse exactly
those disconnects and stalls deterministically.
"""

from __future__ import annotations

import socket
import threading

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    parse_request,
)


class ClientSession:
    """A connected client: buffered reads, locked writes, dead flag."""

    def __init__(self, sock: socket.socket, peer: str, session_id: int) -> None:
        self.sock = sock
        self.peer = peer
        self.session_id = session_id
        self.alive = True
        self._wlock = threading.Lock()
        self.fault_plan = None
        """Optional :class:`repro.faults.netfaults.NetFaultPlan` seam."""

    # -- writer side ----------------------------------------------------

    def send(self, message: dict) -> bool:
        """Write one response line; ``False`` once the client is gone.

        Never raises: a peer reset mid-write marks the session dead and
        reports failure, because a vanished client is an ordinary event
        for a server, not an error.
        """
        plan = self.fault_plan
        if plan is not None:
            if not plan.before_send(self):
                return False
        with self._wlock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(encode(message))
                return True
            except OSError:
                self.alive = False
                return False

    # -- reader side ----------------------------------------------------

    def run_reader(self, on_request, on_protocol_error) -> None:
        """Read frames until EOF/error; dispatch each to a callback.

        ``on_request(session, request)`` receives every valid request;
        ``on_protocol_error(session, exc)`` receives violations (the
        server answers those with a typed ``bad_request``).  An
        oversized frame — no newline within the line cap — is a
        protocol error followed by connection teardown, since resync
        on an unframed stream is impossible.
        """
        try:
            stream = self.sock.makefile("rb")
        except OSError:
            self.alive = False
            return
        try:
            while True:
                line = stream.readline(MAX_LINE_BYTES + 1)
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES and not line.endswith(b"\n"):
                    on_protocol_error(
                        self,
                        ProtocolError("request line exceeds the size cap"),
                    )
                    break
                if line.strip() == b"":
                    continue
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    on_protocol_error(self, exc)
                    continue
                on_request(self, request)
        except (OSError, ValueError):
            pass
        finally:
            self.alive = False
            try:
                stream.close()
            except OSError:
                pass

    # -- teardown -------------------------------------------------------

    def close(self) -> None:
        """Shut the socket down; safe to call from any thread, twice."""
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
