"""The serve wire protocol: versioned newline-delimited JSON.

One request or response per line, UTF-8 JSON, ``\\n`` terminated.
Every message carries ``v`` (the protocol version) and requests carry
a ``verb``; unknown versions and verbs are rejected with a typed
error rather than a dropped connection, so old clients fail loudly.

Request verbs::

    {"v": 1, "verb": "ALIGN", "id": "r1", "client": "c1",
     "name": "read0001", "seq": "ACGT...", "deadline_ms": 500}
    {"v": 1, "verb": "STATUS", "id": "s1"}
    {"v": 1, "verb": "PING", "id": "p1"}

Responses mirror the request ``id``::

    {"v": 1, "id": "r1", "ok": true, "sam": "read0001\\t0\\t..."}
    {"v": 1, "id": "r1", "ok": false, "error": "overloaded",
     "message": "...", "retry_after_ms": 40}

``sam`` is the read's SAM body line exactly as batch-mode
``repro align`` would emit it — byte-identity with the batch path is
the server's correctness contract.  Error codes are the closed set
:data:`ERROR_CODES`; clients switch on the code, never the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

PROTOCOL_VERSION = 1
"""Wire protocol version; bumped only on incompatible changes."""

MAX_LINE_BYTES = 1 << 20
"""Hard per-line size cap — a runaway client cannot balloon memory."""

VERB_ALIGN = "ALIGN"
VERB_STATUS = "STATUS"
VERB_PING = "PING"

VERBS = (VERB_ALIGN, VERB_STATUS, VERB_PING)
"""Every verb the server understands."""

# -- typed error codes (the closed rejection vocabulary) ----------------

E_OVERLOADED = "overloaded"
"""Admission queue past its high-water mark; retry after the hint."""

E_QUOTA = "quota_exceeded"
"""The client's token bucket is empty; retry after the hint."""

E_DEADLINE = "deadline_exceeded"
"""The request expired in the queue before it was batched."""

E_BREAKER_OPEN = "breaker_open"
"""The engine circuit breaker is open; the kernel is degraded."""

E_DRAINING = "draining"
"""The server is shutting down gracefully and admits nothing new."""

E_BAD_REQUEST = "bad_request"
"""The request failed schema validation."""

E_ENGINE = "engine_error"
"""The wave that carried this request raised; nothing was returned."""

ERROR_CODES = (
    E_OVERLOADED,
    E_QUOTA,
    E_DEADLINE,
    E_BREAKER_OPEN,
    E_DRAINING,
    E_BAD_REQUEST,
    E_ENGINE,
)
"""The closed set of typed rejection codes."""

VALID_BASES = frozenset("ACGTNacgtn")
"""Characters an ALIGN request's ``seq`` may contain."""


class ProtocolError(ValueError):
    """A message violated the wire schema (carries the typed code)."""

    def __init__(self, message: str, code: str = E_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One parsed, validated request line."""

    verb: str
    id: str
    client: str = ""
    name: str = ""
    seq: str = ""
    deadline_ms: int | None = None
    raw: dict = field(default_factory=dict, repr=False, compare=False)


def parse_request(line: str | bytes) -> Request:
    """Parse and validate one request line; raises :class:`ProtocolError`.

    Validation is strict: version and verb must be known, ``id`` must
    be a non-empty string, and an ``ALIGN`` request needs a read name
    and a non-empty DNA sequence.  The error message never echoes the
    sequence back (responses must stay small under abuse).
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("request line exceeds the size cap")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    elif len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds the size cap")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this server "
            f"speaks v{PROTOCOL_VERSION})"
        )
    verb = payload.get("verb")
    if verb not in VERBS:
        raise ProtocolError(f"unknown verb {verb!r}")
    rid = payload.get("id")
    if not isinstance(rid, str) or not rid:
        raise ProtocolError("request needs a non-empty string 'id'")
    client = payload.get("client", "")
    if not isinstance(client, str):
        raise ProtocolError("'client' must be a string")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, int) or deadline_ms < 1:
            raise ProtocolError("'deadline_ms' must be a positive int")
    name = payload.get("name", "")
    seq = payload.get("seq", "")
    if verb == VERB_ALIGN:
        if not isinstance(name, str) or not name:
            raise ProtocolError("ALIGN needs a non-empty 'name'")
        if not isinstance(seq, str) or not seq:
            raise ProtocolError("ALIGN needs a non-empty 'seq'")
        if not VALID_BASES.issuperset(seq):
            raise ProtocolError("'seq' contains non-ACGTN characters")
    return Request(
        verb=verb,
        id=rid,
        client=client,
        name=name,
        seq=seq,
        deadline_ms=deadline_ms,
        raw=payload,
    )


def encode(message: dict) -> bytes:
    """Render one response/request dict as a terminated wire line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def align_request(
    rid: str,
    name: str,
    seq: str,
    client: str = "",
    deadline_ms: int | None = None,
) -> dict:
    """Build an ``ALIGN`` request dict (the client helper's shape)."""
    payload: dict = {
        "v": PROTOCOL_VERSION,
        "verb": VERB_ALIGN,
        "id": rid,
        "name": name,
        "seq": seq,
    }
    if client:
        payload["client"] = client
    if deadline_ms is not None:
        payload["deadline_ms"] = int(deadline_ms)
    return payload


def status_request(rid: str = "status") -> dict:
    """Build a ``STATUS`` request dict."""
    return {"v": PROTOCOL_VERSION, "verb": VERB_STATUS, "id": rid}


def ok_align(rid: str, sam_line: str) -> dict:
    """A successful ``ALIGN`` response carrying the SAM body line."""
    return {"v": PROTOCOL_VERSION, "id": rid, "ok": True, "sam": sam_line}


def ok_status(rid: str, status: dict) -> dict:
    """A ``STATUS`` response carrying the health snapshot."""
    return {"v": PROTOCOL_VERSION, "id": rid, "ok": True, "status": status}


def ok_pong(rid: str) -> dict:
    """A ``PING`` response."""
    return {"v": PROTOCOL_VERSION, "id": rid, "ok": True, "pong": True}


def error(
    rid: str | None,
    code: str,
    message: str,
    retry_after_ms: int | None = None,
) -> dict:
    """A typed rejection; ``retry_after_ms`` hints shed/quota retries."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    payload: dict = {
        "v": PROTOCOL_VERSION,
        "id": rid,
        "ok": False,
        "error": code,
        "message": message,
    }
    if retry_after_ms is not None:
        payload["retry_after_ms"] = max(0, int(retry_after_ms))
    return payload
