"""Cycle-level model of the banded Smith-Waterman systolic array.

The BSW Core (paper Figure 8) is a vector of PEs marching along the
matrix's main diagonal: each cycle the array computes one anti-diagonal
segment of the band.  This model steps those wavefronts explicitly —
one :func:`repro.hw.pe.affine_pe_step` per active cell per cycle — and
reproduces, at functional fidelity:

* progressive score initialization (the first row/column values enter
  through the E/F channels instead of long broadcast wires);
* the local/global score accumulators (strict-improvement updates, so
  tie-breaking matches the software kernels bit for bit);
* boundary E capture for the optimality checks;
* **speculative early termination** (Section IV-A): a row is cut after
  two consecutive dead cells; because the array processes several rows
  at once, a positive score can still flow into the cut region from
  above — the model raises the paper's exception flag, and such jobs
  are rerun on the host.

The model also reports cycle counts and PE-occupancy statistics, which
calibrate the throughput model in :mod:`repro.hw.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.banded import (
    ExtensionResult,
    boundary_length,
    upper_boundary_length,
)
from repro.align.fullmatrix import scan_scores
from repro.align.scoring import AffineGap
from repro.hw.pe import affine_pe_step, init_col_value, init_row_value


@dataclass(frozen=True)
class SystolicRun:
    """One extension's functional result plus hardware telemetry."""

    result: ExtensionResult
    exception: bool
    cycles: int
    cells_computed: int
    pe_count: int

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles that did useful work."""
        denom = self.pe_count * self.cycles
        return self.cells_computed / denom if denom else 0.0


class SystolicBSW:
    """A banded systolic array of ``band + 1`` PEs."""

    def __init__(
        self,
        band: int,
        scoring: AffineGap,
        speculative_termination: bool = True,
    ) -> None:
        if band < 1:
            raise ValueError("band must be at least 1")
        self.band = band
        self.scoring = scoring
        self.speculative_termination = speculative_termination

    @property
    def pe_count(self) -> int:
        """Processing elements in the array (band + 1)."""
        # Cells on one anti-diagonal within the band: at most band+1.
        return self.band + 1

    def run(
        self, query: np.ndarray, target: np.ndarray, h0: int
    ) -> SystolicRun:
        """Process one extension job wavefront by wavefront."""
        if h0 < 0:
            raise ValueError("h0 must be non-negative")
        query = np.asarray(query, dtype=np.int64)
        target = np.asarray(target, dtype=np.int64)
        scoring = self.scoring
        w = self.band
        qlen = len(query)
        tlen = len(target)

        h = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
        e = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
        f = np.zeros((tlen + 1, qlen + 1), dtype=np.int64)
        computed = np.zeros((tlen + 1, qlen + 1), dtype=bool)

        # Progressive initialization (cycle 0): origin plus decaying
        # first row/column inside the band.
        h[0][0] = h0
        computed[0][0] = True
        for j in range(1, min(qlen, w) + 1):
            h[0][j] = init_row_value(h0, j, scoring)
            f[0][j] = h[0][j]
            computed[0][j] = True
        for i in range(1, min(tlen, w) + 1):
            h[i][0] = init_col_value(h0, i, scoring)
            e[i][0] = h[i][0]
            computed[i][0] = True

        n_boundary = boundary_length(qlen, tlen, w)
        boundary_e = np.zeros(n_boundary, dtype=np.int64)
        if n_boundary > 0 and w <= tlen - 1:
            # Column 0's boundary value comes straight from the
            # progressive-initialization register, not from a PE.
            boundary_e[0] = max(
                0,
                max(
                    int(h[min(w, tlen)][0]) - scoring.gap_open,
                    int(e[min(w, tlen)][0]),
                )
                - scoring.gap_extend_del,
            )

        # Per-row speculative cut: column index past which the row is
        # terminated; -1 means the row is still live.
        cut = np.full(tlen + 1, -1, dtype=np.int64)
        zeros_run = np.zeros(tlen + 1, dtype=np.int64)
        row_was_alive = np.zeros(tlen + 1, dtype=bool)
        exception = False

        cells = int(computed.sum())
        cycles = 1  # the initialization cycle
        for t in range(2, qlen + tlen + 1):
            # Active cells on anti-diagonal i + j = t inside the band.
            i_lo = max(1, t - qlen, (t - w + 1) // 2)
            i_hi = min(tlen, t - 1, (t + w) // 2)
            if i_lo > i_hi:
                continue
            cycles += 1
            for i in range(i_lo, i_hi + 1):
                j = t - i
                if self.speculative_termination and cut[i] >= 0 and j > cut[i]:
                    # Row is cut; the paper's exception fires when a
                    # positive score would still flow in from above.
                    e_in = max(
                        0,
                        max(h[i - 1][j] - scoring.gap_open, e[i - 1][j])
                        - scoring.gap_extend_del,
                    )
                    diag = h[i - 1][j - 1]
                    if e_in > 0 or diag > 0:
                        exception = True
                    continue
                e_in = max(
                    0,
                    max(h[i - 1][j] - scoring.gap_open, e[i - 1][j])
                    - scoring.gap_extend_del,
                )
                f_in = f[i][j - 1] if computed[i][j - 1] else 0
                sub = scoring.substitution(
                    int(target[i - 1]), int(query[j - 1])
                )
                out = affine_pe_step(
                    int(h[i - 1][j - 1]), e_in, f_in, sub, scoring
                )
                h[i][j] = out.h
                e[i][j] = e_in
                f[i][j] = out.f_out
                computed[i][j] = True
                cells += 1

                # Speculative termination bookkeeping.
                if out.h > 0:
                    row_was_alive[i] = True
                if out.h == 0 and e_in == 0:
                    zeros_run[i] += 1
                    if (
                        self.speculative_termination
                        and row_was_alive[i]
                        and zeros_run[i] > 2
                        and cut[i] < 0
                    ):
                        cut[i] = j
                else:
                    zeros_run[i] = 0

                # Boundary E capture at the band's lower edge.
                bj = i - w
                if bj == j and 0 <= bj < n_boundary and i + 1 <= tlen:
                    boundary_e[bj] = max(
                        0,
                        max(out.h - scoring.gap_open, e_in)
                        - scoring.gap_extend_del,
                    )

        # Score reduction: the hardware's lscore/gscore accumulator
        # shift registers implement the same strict-improvement
        # row-major reduction as the software kernel; model it with
        # the canonical scan so tie-breaking is bit-identical.
        lscore, lpos, gscore, gpos, max_off = scan_scores(
            h, h0, qlen, scoring.match
        )

        # Upper-boundary F caps, reconstructed from the H plane with
        # the same conservative formula the software kernel uses.
        n_upper = upper_boundary_length(qlen, tlen, w)
        boundary_f = np.zeros(n_upper, dtype=np.int64)
        if n_upper > 0:
            boundary_f[0] = max(
                0, h0 - scoring.gap_open - (w + 1) * scoring.gap_extend_ins
            )
            ge_i = scoring.gap_extend_ins
            for i in range(1, n_upper):
                lo = max(0, i - w)
                hi = min(qlen, i + w)
                cols = np.arange(lo, hi + 1, dtype=np.int64)
                src = int(np.max(h[i, lo : hi + 1] + cols * ge_i))
                boundary_f[i] = max(
                    0, src - scoring.gap_open - (i + w + 1) * ge_i
                )

        result = ExtensionResult(
            lscore=lscore,
            lpos=lpos,
            gscore=gscore,
            gpos=gpos,
            max_off=max_off,
            band=w,
            h0=h0,
            qlen=qlen,
            tlen=tlen,
            boundary_e=boundary_e,
            cells_computed=cells,
            terminated_early=bool((cut >= 0).any()),
            boundary_f=boundary_f,
        )
        # Drain: the accumulator shift-register reduction adds a
        # band-proportional tail (Section IV-A).
        total_cycles = cycles + self.pe_count
        return SystolicRun(
            result=result,
            exception=exception,
            cycles=total_cycles,
            cells_computed=cells,
            pe_count=self.pe_count,
        )
