"""Functional model of the delta-encoded edit machine (paper Sec IV-B).

The edit machine runs the edit-distance check's optimistic DP using
3-bit residue arithmetic: every interior cell stores only its score
modulo :data:`repro.hw.delta.DELTA_MODULUS`, PEs compare candidates
with delta-max units, and a single full-width augmentation unit decodes
the scores the check needs along the augmentation path (the last
column).

Two co-designed properties make this work, both enforced here:

* the relaxed scoring ``{m:1, x:-1, go:0, ge(ins):0, ge(del):-1}``
  keeps every dmax input trio within the modulo circle's orderable
  range (pairwise differences <= 3) — the model asserts this on every
  cell and raises :class:`DeltaRangeError` otherwise;
* liveness travels as a separate 1-bit flag next to each 3-bit residue
  (the paper's "local score" revision of Lipton's global-only scheme),
  because a dead cell's residue is meaningless.

The decoded outputs are validated bit-for-bit against the full-width
software DP (:func:`repro.align.editdp.left_entry_scores`) in the test
suite; the half-width PE array claim is an area statement handled by
:mod:`repro.hw.area`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.align.editdp import LeftEntryScores
from repro.align.scoring import AffineGap, relaxed_edit_scoring
from repro.hw.delta import DELTA_MODULUS, AugmentationUnit, dmax2


class DeltaRangeError(ValueError):
    """A dmax input trio exceeded the modulo circle's orderable range."""


@dataclass(frozen=True)
class EditMachineRun:
    """Decoded check outputs plus hardware telemetry."""

    scores: LeftEntryScores
    cycles: int
    cells_computed: int
    pe_count: int


class EditMachine:
    """Half-width, delta-encoded edit core for the left-entry check."""

    def __init__(
        self,
        band: int,
        scoring: AffineGap | None = None,
        modulus: int = DELTA_MODULUS,
    ) -> None:
        if band < 1:
            raise ValueError("band must be at least 1")
        self.band = band
        self.scoring = scoring or relaxed_edit_scoring()
        if self.scoring.gap_open != 0 or self.scoring.gap_extend_ins != 0:
            raise ValueError("edit machine requires zero-cost insertions")
        self.modulus = modulus
        self.delta = (modulus - 1) // 2

    def pe_count(self, qlen: int) -> int:
        """Half-width array: the live trapezoid needs qlen/2 + 1 PEs."""
        return qlen // 2 + 1

    def run(
        self,
        query: np.ndarray,
        target: np.ndarray,
        left_seed: Callable[[int], int] | int,
    ) -> EditMachineRun:
        """Sweep the half-matrix in residue arithmetic and decode.

        Residues are kept per cell; full-width values appear only in
        (a) the seed injection and (b) the augmentation unit walking
        the last column.  A shadow full-width array exists purely to
        *assert* the bounded-difference preconditions the hardware
        relies on — its values never feed the result.
        """
        query = np.asarray(query, dtype=np.int64)
        target = np.asarray(target, dtype=np.int64)
        qlen = len(query)
        tlen = len(target)
        band = self.band
        if tlen <= band:
            return EditMachineRun(
                LeftEntryScores(np.zeros(0, dtype=np.int64), 0),
                cycles=0,
                cells_computed=0,
                pe_count=self.pe_count(qlen),
            )
        seed = (
            left_seed if callable(left_seed) else (lambda _i: int(left_seed))
        )
        m = self.scoring.match
        x = self.scoring.mismatch
        ge_d = self.scoring.gap_extend_del
        mod = self.modulus

        rows = tlen - band
        last_column = np.zeros(rows, dtype=np.int64)
        # Residue + liveness state for one row (previous row kept).
        prev_res = np.zeros(qlen + 1, dtype=np.int64)
        prev_alive = np.zeros(qlen + 1, dtype=bool)
        prev_shadow = np.zeros(qlen + 1, dtype=np.int64)
        cells = 0

        # The augmentation unit starts from the first row's seed and
        # walks down the last column (Figure 10's augmentation path).
        aug: AugmentationUnit | None = None

        for r, i in enumerate(range(band + 1, tlen + 1)):
            res = np.zeros(qlen + 1, dtype=np.int64)
            alive = np.zeros(qlen + 1, dtype=bool)
            shadow = np.zeros(qlen + 1, dtype=np.int64)

            # Column 0: seed register (full width by construction).
            s = max(0, seed(i))
            up0 = prev_shadow[0] - ge_d if prev_alive[0] else 0
            val0 = max(s, up0, 0)
            shadow[0] = val0
            res[0] = val0 % mod
            alive[0] = val0 > 0

            for j in range(1, qlen + 1):
                cells += 1
                cands_res: list[int] = []
                cands_shadow: list[int] = []
                # Left (free insertion).
                if alive[j - 1]:
                    cands_res.append(int(res[j - 1]))
                    cands_shadow.append(int(shadow[j - 1]))
                # Up (deletion).
                if prev_alive[j]:
                    cands_res.append((int(prev_res[j]) - ge_d) % mod)
                    cands_shadow.append(int(prev_shadow[j]) - ge_d)
                # Diagonal (match/mismatch; dead diagonals stay dead).
                if prev_alive[j - 1] and prev_shadow[j - 1] > 0:
                    sub = m if target[i - 1] == query[j - 1] else -x
                    cands_res.append((int(prev_res[j - 1]) + sub) % mod)
                    cands_shadow.append(int(prev_shadow[j - 1]) + sub)
                if not cands_res:
                    continue  # dead cell: residue meaningless

                self._assert_orderable(cands_shadow)
                out = cands_res[0]
                for c in cands_res[1:]:
                    out, _ = dmax2(out, c, mod)
                true_val = max(cands_shadow)
                if true_val <= 0:
                    continue  # clamps dead; liveness bit stays 0
                res[j] = out
                shadow[j] = true_val
                alive[j] = True

            prev_res, prev_alive, prev_shadow = res, alive, shadow

            # Augmentation unit decodes the last-column residue.
            if alive[qlen]:
                if aug is None:
                    # The unit is initialized from the row's decoded
                    # predecessor chain; model: sync at first live cell.
                    aug = AugmentationUnit(int(shadow[qlen]), mod)
                    decoded = aug.score
                else:
                    decoded = aug.decode(int(res[qlen]))
                if decoded != int(shadow[qlen]):
                    raise DeltaRangeError(
                        "augmentation decode diverged from the true "
                        f"score at row {i}: {decoded} != {shadow[qlen]}"
                    )
                last_column[r] = decoded
            else:
                # A dead edge cell resets the augmentation chain.
                aug = None

        best = int(last_column.max(initial=0))
        # One wavefront per anti-diagonal of the trapezoid plus drain.
        cycles = rows + qlen + self.pe_count(qlen)
        return EditMachineRun(
            scores=LeftEntryScores(last_column, best),
            cycles=cycles,
            cells_computed=cells,
            pe_count=self.pe_count(qlen),
        )

    def _assert_orderable(self, values: list[int]) -> None:
        for a in values:
            for b in values:
                if abs(a - b) > self.delta:
                    raise DeltaRangeError(
                        f"dmax inputs {values} exceed delta="
                        f"{self.delta}; scoring scheme violates the "
                        "modulo-circle co-design"
                    )
