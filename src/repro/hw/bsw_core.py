"""BSW Core: one banded systolic engine plus its job interface.

Wraps the cycle-level array of :mod:`repro.hw.systolic` with the
buffer/accumulator timing the paper attributes to the core (input
shift-register initialization and score reduction scale with the
band), and exposes the exception-driven rerun contract: a job whose
speculative early termination proved wrong is flagged, not silently
mis-scored.

For throughput-oriented simulation (thousands of jobs), the core can
run in ``fast`` mode: scores come from the bit-identical software
kernel while cycles come from the calibrated timing model.  ``cycle``
mode steps every PE and is used by the validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align import banded
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.hw import timing
from repro.hw.systolic import SystolicBSW


@dataclass(frozen=True)
class CoreJobResult:
    """One job through a BSW core."""

    result: ExtensionResult
    exception: bool
    cycles: float


class BSWCore:
    """One banded Smith-Waterman core."""

    def __init__(
        self,
        band: int,
        scoring: AffineGap = BWA_MEM_SCORING,
        mode: str = "fast",
    ) -> None:
        if mode not in ("fast", "cycle"):
            raise ValueError(f"unknown mode {mode!r}")
        self.band = band
        self.scoring = scoring
        self.mode = mode
        self._array = SystolicBSW(band, scoring)
        self.jobs = 0
        self.busy_cycles = 0.0

    def run(
        self, query: np.ndarray, target: np.ndarray, h0: int
    ) -> CoreJobResult:
        """Process one extension job through this core."""
        self.jobs += 1
        if self.mode == "cycle":
            run = self._array.run(query, target, h0)
            out = CoreJobResult(run.result, run.exception, float(run.cycles))
        else:
            result = banded.extend(
                query, target, self.scoring, h0, w=self.band
            )
            cycles = timing.initiation_interval_cycles(
                self.band, read_length=max(1, len(query))
            )
            out = CoreJobResult(result, False, cycles)
        self.busy_cycles += out.cycles
        return out
