"""Latency/throughput models (paper Figure 16c, 18; Section VII).

Wall-clock hardware numbers cannot be measured here, so timing is an
analytic model with two fitted coefficients (see DESIGN.md):

* per-core **initiation interval** ``II(w) = II_BASE + II_PER_PE * w``
  cycles, anchored at the paper's two operating points — 36 narrow
  cores at 125 MHz delivering 43.9 M ext/s (=> II(41) ~ 102.5) and the
  6.0x iso-area speedup over 9 full-band cores (=> II(101) ~ 154);
* per-job **latency** ``LAT(w) = wavefronts + LAT_PER_PE * w``, with
  ``LAT_PER_PE`` fitted to the published 1.9x latency improvement —
  the shift-register initialization and accumulator reduction both
  scale with the band (Section VII-A).

The Figure 18 comparator constants (CPU/GPU/Sillax kernel throughput,
application-level throughput and energy) come straight from the
paper's reported ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as paper
from repro.hw import area

FPGA_CLOCK_HZ = 1e9 / paper.FPGA_CLOCK_NS  # 125 MHz
ASIC_CLOCK_HZ = 1e9 / paper.ASIC_CLOCK_NS  # ~2.04 GHz

# -- initiation interval fit (see module docstring) ---------------------------

_II_41 = (
    paper.NARROW_BSW_CORES_TOTAL
    * FPGA_CLOCK_HZ
    / paper.SEEDEX_THROUGHPUT_EXT_PER_S
)
_FULL_THROUGHPUT = (
    paper.SEEDEX_THROUGHPUT_EXT_PER_S / paper.ISO_AREA_THROUGHPUT_SPEEDUP
)
_II_101 = paper.FULL_BAND_CORES_TOTAL * FPGA_CLOCK_HZ / _FULL_THROUGHPUT
II_PER_PE = (_II_101 - _II_41) / (paper.FULL_BAND - paper.DEFAULT_BAND)
II_BASE = _II_41 - II_PER_PE * paper.DEFAULT_BAND

# -- latency fit --------------------------------------------------------------

_WAVEFRONTS = paper.READ_LENGTH_BP * 2 + 20  # qlen + tlen for 101bp jobs
LAT_PER_PE = (
    _WAVEFRONTS * (paper.SEEDEX_LATENCY_IMPROVEMENT - 1)
) / (paper.FULL_BAND - paper.SEEDEX_LATENCY_IMPROVEMENT * paper.DEFAULT_BAND)


def initiation_interval_cycles(
    band: int, read_length: int = paper.READ_LENGTH_BP
) -> float:
    """Cycles between successive extensions entering one core."""
    if band < 1:
        raise ValueError("band must be at least 1")
    scale = read_length / paper.READ_LENGTH_BP
    return (II_BASE + II_PER_PE * band) * scale


def extension_latency_cycles(
    band: int,
    qlen: int = paper.READ_LENGTH_BP,
    tlen: int = paper.READ_LENGTH_BP + 20,
) -> float:
    """End-to-end cycles for one extension through a BSW core."""
    return (qlen + tlen) + LAT_PER_PE * band


def core_throughput(
    band: int,
    clock_hz: float = FPGA_CLOCK_HZ,
    read_length: int = paper.READ_LENGTH_BP,
) -> float:
    """Extensions/s of one pipelined BSW core."""
    return clock_hz / initiation_interval_cycles(band, read_length)


def fpga_throughput(
    n_bsw_cores: int = paper.NARROW_BSW_CORES_TOTAL,
    band: int = paper.DEFAULT_BAND,
    clock_hz: float = FPGA_CLOCK_HZ,
) -> float:
    """Device throughput with perfect prefetching (Section V-A)."""
    return n_bsw_cores * core_throughput(band, clock_hz)


def iso_area_speedup(
    narrow_band: int = paper.DEFAULT_BAND,
    full_band: int = paper.FULL_BAND,
    narrow_cores: int = paper.NARROW_BSW_CORES_TOTAL,
    full_cores: int = paper.FULL_BAND_CORES_TOTAL,
) -> float:
    """Figure 16c's headline ratio."""
    return fpga_throughput(narrow_cores, narrow_band) / fpga_throughput(
        full_cores, full_band
    )


def latency_improvement(
    narrow_band: int = paper.DEFAULT_BAND,
    full_band: int = paper.FULL_BAND,
) -> float:
    """The published 1.9x per-job latency advantage."""
    return extension_latency_cycles(full_band) / extension_latency_cycles(
        narrow_band
    )


def edit_machine_utilization(
    edit_demand: float,
    bsw_per_edit: int = paper.BSW_TO_EDIT_CORE_RATIO,
    edit_service_ratio: float = 1.0,
) -> float:
    """Occupancy of the shared edit machine in a SeedEx core.

    Each of the ``bsw_per_edit`` BSW cores emits one job per initiation
    interval; a fraction ``edit_demand`` of them also needs the edit
    machine, whose per-job service time is ``edit_service_ratio`` times
    the BSW interval (the half-width sweep covers a similar cell count,
    so ~1.0).  Utilization above 1.0 means the edit machine is the
    bottleneck and BSW cores stall — the paper picked 3:1 because the
    threshold check fails for roughly one extension in three.
    """
    if not 0.0 <= edit_demand <= 1.0:
        raise ValueError("edit_demand must be a fraction")
    if bsw_per_edit < 1:
        raise ValueError("need at least one BSW core per edit machine")
    return edit_demand * bsw_per_edit * edit_service_ratio


def max_bsw_per_edit(edit_demand: float) -> int:
    """Largest BSW:edit ratio that keeps the edit machine under 100%."""
    if edit_demand <= 0:
        return 64  # effectively unconstrained
    return max(1, int(1.0 / edit_demand))


# -- Figure 18 comparators -----------------------------------------------------


@dataclass(frozen=True)
class Comparator:
    """One bar of Figure 18: area-normalized throughput and energy."""

    name: str
    kernel_kexts_per_s_per_mm2: float | None
    app_kreads_per_s_per_mm2: float | None
    energy_kreads_per_j: float | None


def asic_kernel_throughput_per_mm2() -> float:
    """SeedEx ASIC extension-kernel throughput per mm^2 (K ext/s)."""
    # 12 BSW cores at the ASIC clock; area from Table III.
    exts = 12 * core_throughput(paper.DEFAULT_BAND, ASIC_CLOCK_HZ)
    asic_area, _ = area.asic_seedex_totals()
    return exts / asic_area / 1e3


def figure18_comparators() -> list[Comparator]:
    """All systems of Figure 18, SeedEx derived + paper-reported ratios."""
    seedex_kernel = asic_kernel_throughput_per_mm2()
    sillax_kernel = seedex_kernel / 20.0  # paper: 20x better than Sillax
    # CPU/GPU kernel bars: the paper's log-scale chart places them
    # orders of magnitude below the ASICs.
    cpu_kernel = sillax_kernel / 2_000
    gpu_kernel = sillax_kernel / 10_000

    # Application-level (ERT + extension): 1.56x over ERT+Sillax,
    # 14.6x over GenAx; energy 2.45x and 2.11x respectively.
    ert_seedex_app = 320.0  # K reads/s/mm^2, Figure 18(b) scale
    ert_seedex_energy = 850.0  # K reads/s/J, Figure 18(c) scale
    return [
        Comparator("CPU (SeqAn)", cpu_kernel, 1.2, 9.0),
        Comparator("GPU (SW#/CUSHAW2)", gpu_kernel, 0.5, 3.0),
        Comparator(
            "GenAx",
            None,
            ert_seedex_app / paper.ERT_SEEDEX_VS_GENAX_PERF,
            ert_seedex_energy / paper.ERT_SEEDEX_VS_GENAX_ENERGY,
        ),
        Comparator(
            "ERT+Sillax",
            sillax_kernel,
            ert_seedex_app / paper.ERT_SEEDEX_VS_ERT_SILLAX_PERF,
            ert_seedex_energy / paper.ERT_SEEDEX_VS_ERT_SILLAX_ENERGY,
        ),
        Comparator(
            "ERT+SeedEx", seedex_kernel, ert_seedex_app, ert_seedex_energy
        ),
    ]
