"""The affine-gap processing element (paper Figure 8).

One PE computes one DP cell per cycle: the cell score ``H`` from the
diagonal input plus substitution score, the vertical ``E`` channel it
forwards to the cell below, and the horizontal ``F`` channel it
forwards to the cell on its right.  Semantics are identical to the
software kernels (dead-at-zero extension scoring); the systolic model
composes these steps along anti-diagonal wavefronts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.scoring import AffineGap


@dataclass(frozen=True)
class PEOutput:
    """One cell's result: its score and the two forwarded channels."""

    h: int
    e_out: int
    f_out: int


def affine_pe_step(
    h_diag: int,
    e_in: int,
    f_in: int,
    substitution: int,
    scoring: AffineGap,
) -> PEOutput:
    """Compute one extension-mode DP cell.

    ``h_diag`` is H of the upper-left neighbour, ``e_in`` the E channel
    arriving from above (already extended to this row), ``f_in`` the F
    channel arriving from the left.  Dead cells (score 0) cannot seed
    diagonal moves.
    """
    diag = h_diag + substitution if h_diag > 0 else 0
    h = max(diag, e_in, f_in, 0)
    e_out = max(
        0, max(h - scoring.gap_open, e_in) - scoring.gap_extend_del
    )
    f_out = max(
        0, max(h - scoring.gap_open, f_in) - scoring.gap_extend_ins
    )
    return PEOutput(h=h, e_out=e_out, f_out=f_out)


def init_row_value(h0: int, j: int, scoring: AffineGap) -> int:
    """Progressive initialization value for row 0, column ``j``."""
    if j == 0:
        return h0
    return max(
        0,
        h0 - scoring.gap_open - j * scoring.gap_extend_ins,
    )


def init_col_value(h0: int, i: int, scoring: AffineGap) -> int:
    """Progressive initialization value for column 0, row ``i``."""
    if i == 0:
        return h0
    return max(
        0,
        h0 - scoring.gap_open - i * scoring.gap_extend_del,
    )
