"""FPGA and ASIC area models (paper Figures 4, 15, 16a/b; Tables II, III).

Hardware cannot be synthesized in this environment, so area is an
analytic model *calibrated to the paper's published numbers* (see
DESIGN.md, "Substitutions").  The calibration is deliberately minimal:

* BSW-core LUTs are affine in the band, ``luts = PE_LUTS*(w + C0)`` —
  the linear shape of Figure 4.  ``C0`` is derived from the paper's
  2.3x SeedEx-core-vs-full-band-core LUT improvement, and ``PE_LUTS``
  from Table II's absolute utilization of a SeedEx core on the VU9P.
* The edit-core optimization ladder divides a band-41 BSW core by the
  published factors 1.82 / 3.11 / 6.06 (Figure 16b).
* The ASIC model is Table III verbatim plus derived aggregates.

Every public function returns plain numbers so the benchmark harnesses
can print paper-vs-model rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as paper

VU9P_LUTS = 1_182_000
"""Logic LUTs on the Xilinx Ultrascale+ VU9P (f1.2xlarge FPGA)."""

# -- calibration (see module docstring) --------------------------------------

# Table II: 3 SeedEx cores use 12.47% of VU9P LUTs.
_SEEDEX_CORE_LUTS = paper.TABLE2_UTILIZATION["SeedEx: SeedEx Core"][
    "LUT"
] / 100 * VU9P_LUTS / 3

# SeedEx core = 3 BSW(41) + 1 edit core, and the edit core is a
# band-41 BSW core shrunk by the half-width ladder factor.
_EDIT_FRACTION = 1.0 / (3 * paper.EDIT_HALF_WIDTH_FACTOR)
_BSW41_LUTS = _SEEDEX_CORE_LUTS / (3 * (1 + _EDIT_FRACTION))

# Affine band model bsw(w) = PE_LUTS * (w + C0), anchored so that
# 3*bsw(101) / seedex_core = the published 2.3x improvement.
_TARGET_RATIO = (
    paper.SEEDEX_CORE_LUT_IMPROVEMENT * (1 + _EDIT_FRACTION)
)  # bsw(101)/bsw(41)
_C0 = (101 - _TARGET_RATIO * 41) / (_TARGET_RATIO - 1)
PE_LUTS = _BSW41_LUTS / (41 + _C0)
"""LUTs per banded-SW processing element (calibrated)."""


def bsw_core_luts(band: int) -> float:
    """LUTs of one banded Smith-Waterman core (Figure 4's line)."""
    if band < 1:
        raise ValueError("band must be at least 1")
    return PE_LUTS * (band + _C0)


def edit_core_luts(band: int, optimization: str = "half-width") -> float:
    """LUTs of one edit core at a given optimization level (Fig 16b).

    Levels: ``baseline`` (an affine BSW core), ``reduced-scoring``,
    ``delta`` (3-bit encoding), ``half-width`` (the shipped design).
    """
    factors = {
        "baseline": 1.0,
        "reduced-scoring": paper.EDIT_REDUCED_SCORING_FACTOR,
        "delta": paper.EDIT_DELTA_ENCODING_FACTOR,
        "half-width": paper.EDIT_HALF_WIDTH_FACTOR,
    }
    if optimization not in factors:
        raise ValueError(f"unknown optimization {optimization!r}")
    return bsw_core_luts(band) / factors[optimization]


def seedex_core_luts(band: int = paper.DEFAULT_BAND) -> float:
    """One SeedEx core: 3 narrow BSW cores + 1 half-width edit core."""
    return 3 * bsw_core_luts(band) + edit_core_luts(band)


def full_band_core_luts(band: int = paper.FULL_BAND) -> float:
    """The baseline full-band core: 3 BSW cores at the read length."""
    return 3 * bsw_core_luts(band)


def edit_machine_overhead(band: int = paper.DEFAULT_BAND) -> float:
    """Edit-machine area overhead *over the narrow-band machines*
    (paper Section I: 5.53%)."""
    return edit_core_luts(band) / (3 * bsw_core_luts(band))


def band_utilization_percent(band: int) -> float:
    """Figure 4's y-axis: one core's LUTs as % of the VU9P."""
    return 100.0 * bsw_core_luts(band) / VU9P_LUTS


@dataclass(frozen=True)
class FpgaBreakdown:
    """LUT shares of a SeedEx-only FPGA image (Figure 15)."""

    bsw_cores: float
    edit_cores: float
    controller: float
    io_buffers: float
    aws_shell: float

    def as_dict(self) -> dict[str, float]:
        """Component-name -> LUTs mapping for reporting."""
        return {
            "BSW cores": self.bsw_cores,
            "Edit cores": self.edit_cores,
            "Controller + arbiter": self.controller,
            "I/O buffers": self.io_buffers,
            "AWS shell interface": self.aws_shell,
        }


def seedex_fpga_breakdown(
    n_seedex_cores: int = 12, band: int = paper.DEFAULT_BAND
) -> FpgaBreakdown:
    """LUT breakdown of the SeedEx-only image (12 cores = 36 BSW).

    Controller/buffer/shell shares come from Table II (they are design
    constants, not per-core costs).
    """
    t2 = paper.TABLE2_UTILIZATION
    bsw = 3 * bsw_core_luts(band) * n_seedex_cores
    edit = edit_core_luts(band) * n_seedex_cores
    controller = t2["SeedEx: Controller"]["LUT"] / 100 * VU9P_LUTS
    io = t2["SeedEx: I/O Buffers"]["LUT"] / 100 * VU9P_LUTS
    shell = t2["AWS Interface"]["LUT"] / 100 * VU9P_LUTS
    return FpgaBreakdown(
        bsw_cores=bsw,
        edit_cores=edit,
        controller=controller,
        io_buffers=io,
        aws_shell=shell,
    )


def table2_model(
    band: int = paper.DEFAULT_BAND, resource: str = "LUT"
) -> dict[str, float]:
    """Model-side utilization % for Table II's SeedEx rows.

    LUTs for the SeedEx cores come from the calibrated band model; the
    memory resources (BRAM input buffers and score RAMs, URAM) scale
    per core from Table II's published per-core shares — they hold
    sequences and scores, whose sizes are band-independent.
    """
    t2 = paper.TABLE2_UTILIZATION
    if resource == "LUT":
        core_pct = 100.0 * 3 * seedex_core_luts(band) / VU9P_LUTS
    elif resource in ("BRAM", "URAM"):
        core_pct = t2["SeedEx: SeedEx Core"][resource]
    else:
        raise ValueError(f"unknown resource {resource!r}")
    controller = t2["SeedEx: Controller"][resource]
    io = t2["SeedEx: I/O Buffers"][resource]
    return {
        "SeedEx: Controller": controller,
        "SeedEx: I/O Buffers": io,
        "SeedEx: SeedEx Core": core_pct,
        "SeedEx: Total": controller + io + core_pct,
    }


# -- ASIC model (Table III, Figure 18) ---------------------------------------


@dataclass(frozen=True)
class AsicComponent:
    name: str
    config: str
    area_mm2: float
    power_w: float


def asic_seedex_components() -> list[AsicComponent]:
    """Table III's SeedEx rows."""
    return [
        AsicComponent(name, row["config"], row["area_mm2"], row["power_w"])
        for name, row in paper.TABLE3_ASIC.items()
    ]


def asic_seedex_totals() -> tuple[float, float]:
    """(area mm^2, power W) of the SeedEx ASIC block."""
    comps = asic_seedex_components()
    return (
        sum(c.area_mm2 for c in comps),
        sum(c.power_w for c in comps),
    )


def asic_system_totals() -> tuple[float, float]:
    """(area, power) of the full ERT + SeedEx aligner ASIC."""
    area, power = asic_seedex_totals()
    return (
        area + paper.TABLE3_ERT["area_mm2"],
        power + paper.TABLE3_ERT["power_w"],
    )


def sillax_area_mm2() -> float:
    """GenAx's Silla array area under SeedEx's scaling comparison.

    The paper reports SeedEx reduces extension area by 16x vs Sillax
    (Section VII-C); Sillax's O(K^2) state scaling with K=32 is why.
    """
    seedex_area, _ = asic_seedex_totals()
    return seedex_area * paper.SEEDEX_VS_SILLAX_AREA_REDUCTION


def sillax_power_w() -> float:
    """Sillax power under the paper's 10x reduction comparison."""
    _, seedex_power = asic_seedex_totals()
    return seedex_power * paper.SEEDEX_VS_SILLAX_POWER_REDUCTION
