"""Hardware models: functional PEs/arrays plus calibrated cost models.

* :mod:`repro.hw.pe`, :mod:`repro.hw.systolic` — cycle-level BSW array;
* :mod:`repro.hw.delta`, :mod:`repro.hw.edit_machine` — 3-bit residue
  arithmetic and the delta-encoded edit core;
* :mod:`repro.hw.bsw_core`, :mod:`repro.hw.seedex_core`,
  :mod:`repro.hw.accelerator` — the core/cluster/device hierarchy;
* :mod:`repro.hw.area`, :mod:`repro.hw.timing` — analytic FPGA/ASIC
  cost models calibrated to the paper's published numbers.
"""

from repro.hw.accelerator import AcceleratorConfig, SeedExAccelerator
from repro.hw.edit_machine import EditMachine
from repro.hw.seedex_core import SeedExCore
from repro.hw.systolic import SystolicBSW

__all__ = [
    "AcceleratorConfig",
    "EditMachine",
    "SeedExAccelerator",
    "SeedExCore",
    "SystolicBSW",
]
