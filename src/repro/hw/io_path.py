"""The accelerator's input/output path (Figure 7, Section V-A).

Three pieces of plumbing the paper describes around the compute cores:

* **memory-line packing** — jobs travel as 512-bit DDR lines; queries
  and targets are 3-bit packed with a metadata header (the paper
  stores the reference 2-bit in FPGA DRAM and feeds cores 3-bit pairs);
* **arbiter / state manager** — each SeedEx core's inputs are chunked
  and fed sequentially from the input RAM, with the state manager
  bookkeeping several in-flight streams so a stalled fetch never
  starves the PE array (prefetch hides the 40-cycle AXI latency);
* **output coalescer** — results pack five to one into an output line
  before write-back "in a bandwidth efficient manner".

All of it is functional: pack/unpack are exact inverses
(property-tested) and the arbiter reproduces its inputs stream-for-
stream, so the I/O path can sit inside the accelerator model without
touching the bit-equivalence story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genome.synth import ExtensionJob

LINE_BITS = 512
LINE_BYTES = LINE_BITS // 8
CHAR_BITS = 3
CHARS_PER_LINE = LINE_BITS // CHAR_BITS  # 170
HEADER_BYTES = 8
OUTPUT_COALESCE_RATIO = 5
RESULT_BYTES = 12
"""Per-extension result record: scores, positions, check bits."""


def pack_job(job: ExtensionJob) -> list[bytes]:
    """Pack one job into 512-bit memory lines.

    Line 0 starts with a header (query length, target length, h0);
    the 3-bit characters of query-then-target follow, bit-packed
    little-endian across line boundaries.
    """
    qlen = len(job.query)
    tlen = len(job.target)
    if qlen >= 2**16 or tlen >= 2**16 or not 0 <= job.h0 < 2**16:
        raise ValueError("job dimensions exceed the 16-bit header fields")
    header = (
        qlen.to_bytes(2, "little")
        + tlen.to_bytes(2, "little")
        + job.h0.to_bytes(2, "little")
        + b"\x00\x00"
    )
    chars = np.concatenate(
        [np.asarray(job.query, dtype=np.uint8),
         np.asarray(job.target, dtype=np.uint8)]
    )
    if chars.size and chars.max(initial=0) >= 2**CHAR_BITS:
        raise ValueError("characters exceed the 3-bit input format")
    bits = np.zeros(chars.size * CHAR_BITS, dtype=np.uint8)
    for b in range(CHAR_BITS):
        bits[b::CHAR_BITS] = (chars >> b) & 1
    payload = np.packbits(bits, bitorder="little").tobytes()
    blob = header + payload
    lines = []
    for off in range(0, len(blob), LINE_BYTES):
        chunk = blob[off : off + LINE_BYTES]
        lines.append(chunk.ljust(LINE_BYTES, b"\x00"))
    return lines


def unpack_job(lines: list[bytes], tag: str = "") -> ExtensionJob:
    """Exact inverse of :func:`pack_job`."""
    blob = b"".join(lines)
    if len(blob) < HEADER_BYTES:
        raise ValueError("truncated job: missing header")
    qlen = int.from_bytes(blob[0:2], "little")
    tlen = int.from_bytes(blob[2:4], "little")
    h0 = int.from_bytes(blob[4:6], "little")
    n_chars = qlen + tlen
    need = HEADER_BYTES + (n_chars * CHAR_BITS + 7) // 8
    if len(blob) < need:
        raise ValueError("truncated job: payload shorter than header says")
    payload = np.frombuffer(
        blob[HEADER_BYTES:need], dtype=np.uint8
    )
    bits = np.unpackbits(payload, bitorder="little")[: n_chars * CHAR_BITS]
    chars = np.zeros(n_chars, dtype=np.uint8)
    for b in range(CHAR_BITS):
        chars |= (bits[b::CHAR_BITS] << b).astype(np.uint8)
    return ExtensionJob(
        query=chars[:qlen].copy(),
        target=chars[qlen:].copy(),
        h0=h0,
        tag=tag,
    )


def lines_per_job(job: ExtensionJob) -> int:
    """Memory lines one packed job occupies."""
    return len(pack_job(job))


@dataclass
class StreamState:
    """State-manager bookkeeping for one in-flight input stream."""

    stream_id: int
    lines: list[bytes]
    next_line: int = 0
    delivered: list[bytes] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        """True once every line of the stream was delivered."""
        return self.next_line >= len(self.lines)


@dataclass
class ArbiterReport:
    cycles: int
    lines_delivered: int
    stalls: int
    per_stream_lines: dict[int, int]

    @property
    def efficiency(self) -> float:
        """Delivered lines per cycle (1.0 = never stalled)."""
        return (
            self.lines_delivered / self.cycles if self.cycles else 0.0
        )


class Arbiter:
    """Round-robin line feeder over several input streams.

    One line per cycle leaves the input RAM; a stream whose prefetch
    has not landed yet (modeled by per-line availability times) causes
    either a switch to another ready stream or — if none is ready — a
    stall cycle.  With prefetch latency below the compute interval the
    stall count is zero, the paper's "memory access time is completely
    hidden".
    """

    def __init__(self, prefetch_latency_lines: int = 0) -> None:
        self.prefetch_latency = prefetch_latency_lines
        self.streams: dict[int, StreamState] = {}

    def add_stream(self, stream_id: int, lines: list[bytes]) -> None:
        """Register one input stream's memory lines."""
        if stream_id in self.streams:
            raise ValueError(f"stream {stream_id} already registered")
        self.streams[stream_id] = StreamState(stream_id, list(lines))

    def run(self) -> ArbiterReport:
        """Drain all streams; returns delivery telemetry."""
        order = sorted(self.streams)
        cycles = 0
        delivered = 0
        stalls = 0
        rr = 0
        # A line is "ready" once its index is at least prefetch_latency
        # cycles old relative to stream registration; the prefetcher
        # runs ahead, so only the pipe-fill can ever stall.
        while any(not s.exhausted for s in self.streams.values()):
            cycles += 1
            progressed = False
            for k in range(len(order)):
                stream = self.streams[order[(rr + k) % len(order)]]
                if stream.exhausted:
                    continue
                ready_at = (
                    stream.next_line + self.prefetch_latency
                    if stream.next_line == 0
                    else 0
                )
                if cycles <= ready_at:
                    continue
                stream.delivered.append(stream.lines[stream.next_line])
                stream.next_line += 1
                delivered += 1
                rr = (rr + k + 1) % len(order)
                progressed = True
                break
            if not progressed:
                stalls += 1
        return ArbiterReport(
            cycles=cycles,
            lines_delivered=delivered,
            stalls=stalls,
            per_stream_lines={
                sid: len(s.delivered) for sid, s in self.streams.items()
            },
        )


@dataclass
class CoalescerReport:
    results: int
    lines_written: int

    @property
    def bytes_saved_fraction(self) -> float:
        """Write-back bandwidth saved vs one line per result."""
        naive = self.results * LINE_BYTES
        actual = self.lines_written * LINE_BYTES
        return 1.0 - actual / naive if naive else 0.0


def coalesce_results(n_results: int) -> CoalescerReport:
    """Model the 5:1 output coalescer (Section V-A)."""
    if n_results < 0:
        raise ValueError("result count must be non-negative")
    per_line = OUTPUT_COALESCE_RATIO
    lines = (n_results + per_line - 1) // per_line
    return CoalescerReport(results=n_results, lines_written=lines)
