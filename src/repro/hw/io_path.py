"""The accelerator's input/output path (Figure 7, Section V-A).

Three pieces of plumbing the paper describes around the compute cores:

* **memory-line packing** — jobs travel as 512-bit DDR lines; queries
  and targets are 3-bit packed with a metadata header (the paper
  stores the reference 2-bit in FPGA DRAM and feeds cores 3-bit pairs);
* **arbiter / state manager** — each SeedEx core's inputs are chunked
  and fed sequentially from the input RAM, with the state manager
  bookkeeping several in-flight streams so a stalled fetch never
  starves the PE array (prefetch hides the 40-cycle AXI latency);
* **output coalescer** — results pack five to one into an output line
  before write-back "in a bandwidth efficient manner".

All of it is functional: pack/unpack are exact inverses
(property-tested) and the arbiter reproduces its inputs stream-for-
stream, so the I/O path can sit inside the accelerator model without
touching the bit-equivalence story.

The framing is *untrusting* (see ``docs/resilience.md``): every packed
job carries a CRC-16 over its full padded line image in the header's
spare bytes, and every result record ends in a CRC-16 — so a bit flip,
truncation, drop, or reorder anywhere in the datapath surfaces as a
typed :class:`CorruptLineError`/:class:`CorruptRecordError` instead of
a silently mis-aligned read.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass, field

import numpy as np

from repro.genome.sequence import AMBIGUOUS_CODE
from repro.genome.synth import ExtensionJob

LINE_BITS = 512
LINE_BYTES = LINE_BITS // 8
CHAR_BITS = 3
CHARS_PER_LINE = LINE_BITS // CHAR_BITS  # 170
HEADER_BYTES = 8
OUTPUT_COALESCE_RATIO = 5
RESULT_BYTES = 12
"""Per-extension result record: scores, positions, check bits."""

CRC_INIT = 0xFFFF
"""Initial value for the CRC-16/CCITT line and record checksums."""


def _crc16(blob: bytes) -> int:
    """CRC-16/CCITT over ``blob`` (the datapath's integrity check)."""
    return binascii.crc_hqx(blob, CRC_INIT)


class CorruptLineError(ValueError):
    """A packed job failed validation at unpack time.

    Carries enough context to localize the corruption: ``field`` names
    the frame element that failed (``header``, ``payload``, ``crc``,
    ``code``) and ``offset`` is a byte offset (or character index for
    ``code``) into the reassembled job blob.
    """

    def __init__(
        self,
        message: str,
        *,
        field: str = "",
        offset: int = -1,
    ) -> None:
        context = []
        if field:
            context.append(f"field={field}")
        if offset >= 0:
            context.append(f"offset={offset}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(message + suffix)
        self.field = field
        self.offset = offset


class CorruptRecordError(ValueError):
    """A result record failed its CRC or framing check."""

    def __init__(self, message: str, *, field: str = "") -> None:
        super().__init__(
            message + (f" [field={field}]" if field else "")
        )
        self.field = field


def pack_job(job: ExtensionJob) -> list[bytes]:
    """Pack one job into 512-bit memory lines.

    Line 0 starts with a header (query length, target length, h0,
    CRC-16); the 3-bit characters of query-then-target follow,
    bit-packed little-endian across line boundaries.  The CRC covers
    the entire padded line image with the CRC field zeroed, so any
    bit flip, truncation, or reorder of the lines is detectable.
    """
    qlen = len(job.query)
    tlen = len(job.target)
    if qlen >= 2**16 or tlen >= 2**16 or not 0 <= job.h0 < 2**16:
        raise ValueError("job dimensions exceed the 16-bit header fields")
    header = (
        qlen.to_bytes(2, "little")
        + tlen.to_bytes(2, "little")
        + job.h0.to_bytes(2, "little")
        + b"\x00\x00"  # CRC placeholder, patched below
    )
    chars = np.concatenate(
        [np.asarray(job.query, dtype=np.uint8),
         np.asarray(job.target, dtype=np.uint8)]
    )
    if chars.size and chars.max(initial=0) >= 2**CHAR_BITS:
        raise ValueError("characters exceed the 3-bit input format")
    bits = np.zeros(chars.size * CHAR_BITS, dtype=np.uint8)
    for b in range(CHAR_BITS):
        bits[b::CHAR_BITS] = (chars >> b) & 1
    payload = np.packbits(bits, bitorder="little").tobytes()
    blob = header + payload
    padded_len = -(-len(blob) // LINE_BYTES) * LINE_BYTES
    blob = blob.ljust(padded_len, b"\x00")
    crc = _crc16(blob)
    blob = blob[:6] + crc.to_bytes(2, "little") + blob[8:]
    return [
        blob[off : off + LINE_BYTES]
        for off in range(0, len(blob), LINE_BYTES)
    ]


def unpack_job(lines: list[bytes], tag: str = "") -> ExtensionJob:
    """Exact inverse of :func:`pack_job` — with zero trust.

    Every frame element is validated before a job is produced: header
    presence, payload length against the header's claim, the CRC-16
    over the full padded line image, and the 3-bit character codes
    (valid sequence codes are ``0..4``).  Any violation raises
    :class:`CorruptLineError` with field/offset context instead of
    returning a garbage job.
    """
    blob = b"".join(lines)
    if len(blob) < HEADER_BYTES:
        raise CorruptLineError(
            "truncated job: missing header",
            field="header",
            offset=len(blob),
        )
    qlen = int.from_bytes(blob[0:2], "little")
    tlen = int.from_bytes(blob[2:4], "little")
    h0 = int.from_bytes(blob[4:6], "little")
    stored_crc = int.from_bytes(blob[6:8], "little")
    n_chars = qlen + tlen
    need = HEADER_BYTES + (n_chars * CHAR_BITS + 7) // 8
    if len(blob) < need:
        raise CorruptLineError(
            "truncated job: payload shorter than header says",
            field="payload",
            offset=len(blob),
        )
    if len(blob) % LINE_BYTES:
        raise CorruptLineError(
            "truncated job: partial memory line",
            field="payload",
            offset=len(blob),
        )
    actual_crc = _crc16(blob[:6] + b"\x00\x00" + blob[8:])
    if actual_crc != stored_crc:
        raise CorruptLineError(
            f"CRC mismatch: header says {stored_crc:#06x}, "
            f"lines hash to {actual_crc:#06x}",
            field="crc",
            offset=6,
        )
    payload = np.frombuffer(
        blob[HEADER_BYTES:need], dtype=np.uint8
    )
    bits = np.unpackbits(payload, bitorder="little")[: n_chars * CHAR_BITS]
    chars = np.zeros(n_chars, dtype=np.uint8)
    for b in range(CHAR_BITS):
        chars |= (bits[b::CHAR_BITS] << b).astype(np.uint8)
    bad = np.flatnonzero(chars > AMBIGUOUS_CODE)
    if bad.size:
        raise CorruptLineError(
            f"out-of-range 3-bit code {int(chars[bad[0]])}",
            field="code",
            offset=int(bad[0]),
        )
    return ExtensionJob(
        query=chars[:qlen].copy(),
        target=chars[qlen:].copy(),
        h0=h0,
        tag=tag,
    )


def lines_per_job(job: ExtensionJob) -> int:
    """Memory lines one packed job occupies."""
    return len(pack_job(job))


@dataclass
class StreamState:
    """State-manager bookkeeping for one in-flight input stream."""

    stream_id: int
    lines: list[bytes]
    next_line: int = 0
    delivered: list[bytes] = field(default_factory=list)

    @property
    def exhausted(self) -> bool:
        """True once every line of the stream was delivered."""
        return self.next_line >= len(self.lines)


@dataclass
class ArbiterReport:
    cycles: int
    lines_delivered: int
    stalls: int
    per_stream_lines: dict[int, int]

    @property
    def efficiency(self) -> float:
        """Delivered lines per cycle (1.0 = never stalled)."""
        return (
            self.lines_delivered / self.cycles if self.cycles else 0.0
        )


class Arbiter:
    """Round-robin line feeder over several input streams.

    One line per cycle leaves the input RAM; a stream whose prefetch
    has not landed yet (modeled by per-line availability times) causes
    either a switch to another ready stream or — if none is ready — a
    stall cycle.  With prefetch latency below the compute interval the
    stall count is zero, the paper's "memory access time is completely
    hidden".
    """

    def __init__(self, prefetch_latency_lines: int = 0) -> None:
        self.prefetch_latency = prefetch_latency_lines
        self.streams: dict[int, StreamState] = {}

    def add_stream(self, stream_id: int, lines: list[bytes]) -> None:
        """Register one input stream's memory lines."""
        if stream_id in self.streams:
            raise ValueError(f"stream {stream_id} already registered")
        self.streams[stream_id] = StreamState(stream_id, list(lines))

    def run(self) -> ArbiterReport:
        """Drain all streams; returns delivery telemetry."""
        order = sorted(self.streams)
        cycles = 0
        delivered = 0
        stalls = 0
        rr = 0
        # A line is "ready" once its index is at least prefetch_latency
        # cycles old relative to stream registration; the prefetcher
        # runs ahead, so only the pipe-fill can ever stall.
        while any(not s.exhausted for s in self.streams.values()):
            cycles += 1
            progressed = False
            for k in range(len(order)):
                stream = self.streams[order[(rr + k) % len(order)]]
                if stream.exhausted:
                    continue
                ready_at = (
                    stream.next_line + self.prefetch_latency
                    if stream.next_line == 0
                    else 0
                )
                if cycles <= ready_at:
                    continue
                stream.delivered.append(stream.lines[stream.next_line])
                stream.next_line += 1
                delivered += 1
                rr = (rr + k + 1) % len(order)
                progressed = True
                break
            if not progressed:
                stalls += 1
        return ArbiterReport(
            cycles=cycles,
            lines_delivered=delivered,
            stalls=stalls,
            per_stream_lines={
                sid: len(s.delivered) for sid, s in self.streams.items()
            },
        )


@dataclass
class CoalescerReport:
    results: int
    lines_written: int

    @property
    def bytes_saved_fraction(self) -> float:
        """Write-back bandwidth saved vs one line per result."""
        naive = self.results * LINE_BYTES
        actual = self.lines_written * LINE_BYTES
        return 1.0 - actual / naive if naive else 0.0


def coalesce_results(n_results: int) -> CoalescerReport:
    """Model the 5:1 output coalescer (Section V-A)."""
    if n_results < 0:
        raise ValueError("result count must be non-negative")
    per_line = OUTPUT_COALESCE_RATIO
    lines = (n_results + per_line - 1) // per_line
    return CoalescerReport(results=n_results, lines_written=lines)


# -- result records (the output coalescer's functional payload) ---------

_RECORD_LIMIT = 2**15
"""Signed-16-bit bound on the scores/positions a record can carry."""


@dataclass(frozen=True)
class ResultRecord:
    """The wire form of one extension result (write-back path).

    Carries exactly what the host consumes downstream — the local and
    to-end scores with their endpoints — in :data:`RESULT_BYTES` bytes
    including a trailing CRC-16.  The full
    :class:`~repro.align.banded.ExtensionResult` (boundary vectors,
    telemetry) never leaves the core; only this record crosses the
    faultable write-back seam.
    """

    lscore: int
    lpos: tuple[int, int]
    gscore: int
    gpos: int

    @classmethod
    def from_result(cls, result) -> "ResultRecord":
        """Distill an ``ExtensionResult`` into its wire record."""
        return cls(
            lscore=int(result.lscore),
            lpos=(int(result.lpos[0]), int(result.lpos[1])),
            gscore=int(result.gscore),
            gpos=int(result.gpos),
        )

    def pack(self) -> bytes:
        """Serialize to :data:`RESULT_BYTES` bytes with a CRC-16."""
        fields = (self.lscore, self.gscore, self.gpos)
        if any(not -_RECORD_LIMIT <= f < _RECORD_LIMIT for f in fields):
            raise ValueError(
                "scores/positions exceed the 16-bit record format"
            )
        if any(not 0 <= p < 2**16 for p in self.lpos):
            raise ValueError("lpos exceeds the 16-bit record format")
        body = (
            self.lscore.to_bytes(2, "little", signed=True)
            + self.lpos[0].to_bytes(2, "little")
            + self.lpos[1].to_bytes(2, "little")
            + self.gscore.to_bytes(2, "little", signed=True)
            + self.gpos.to_bytes(2, "little", signed=True)
        )
        return body + _crc16(body).to_bytes(2, "little")

    @classmethod
    def unpack(cls, blob: bytes) -> "ResultRecord":
        """Parse and CRC-verify one record; raise on any corruption."""
        if len(blob) != RESULT_BYTES:
            raise CorruptRecordError(
                f"result record is {len(blob)} bytes, "
                f"expected {RESULT_BYTES}",
                field="length",
            )
        stored = int.from_bytes(blob[10:12], "little")
        actual = _crc16(blob[:10])
        if stored != actual:
            raise CorruptRecordError(
                f"CRC mismatch: record says {stored:#06x}, "
                f"bytes hash to {actual:#06x}",
                field="crc",
            )
        return cls(
            lscore=int.from_bytes(blob[0:2], "little", signed=True),
            lpos=(
                int.from_bytes(blob[2:4], "little"),
                int.from_bytes(blob[4:6], "little"),
            ),
            gscore=int.from_bytes(blob[6:8], "little", signed=True),
            gpos=int.from_bytes(blob[8:10], "little", signed=True),
        )


def coalesce_record_lines(records: list[bytes]) -> list[bytes]:
    """Pack result records five to a 512-bit output line (functional).

    The functional counterpart of :func:`coalesce_results`: records
    travel :data:`OUTPUT_COALESCE_RATIO` per line, zero-padded.
    """
    per_line = OUTPUT_COALESCE_RATIO
    lines = []
    for off in range(0, len(records), per_line):
        chunk = b"".join(records[off : off + per_line])
        lines.append(chunk.ljust(LINE_BYTES, b"\x00"))
    return lines


def split_record_lines(lines: list[bytes], n_records: int) -> list[bytes]:
    """Inverse of :func:`coalesce_record_lines` for ``n_records``.

    Raises :class:`CorruptRecordError` when the lines cannot hold the
    expected record count (a dropped or truncated output line).
    """
    blob = b"".join(lines)
    need = n_records * RESULT_BYTES
    capacity = len(lines) * OUTPUT_COALESCE_RATIO
    if n_records > capacity or len(blob) < need:
        raise CorruptRecordError(
            f"{len(lines)} output lines cannot hold "
            f"{n_records} records",
            field="length",
        )
    out = []
    for k in range(n_records):
        line_idx, slot = divmod(k, OUTPUT_COALESCE_RATIO)
        start = line_idx * LINE_BYTES + slot * RESULT_BYTES
        out.append(blob[start : start + RESULT_BYTES])
    return out
