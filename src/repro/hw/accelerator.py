"""The full SeedEx accelerator: clusters, clients, batching, rerun path.

Models the device level of Figure 7: the AWS shell exposes four DDR4
channels; each channel hosts one SeedEx *cluster* of four *clients*
(SeedEx cores).  Input batches are prefetched into BRAM so the AXI
read latency (40 cycles) hides under compute (~100 cycles per job),
results coalesce 5:1 into output lines, and the jobs that fail the
optimality checks come back on a rerun queue that the host drains with
the full-band software kernel.

The model is functional for decisions (every accepted score is the
proven-optimal narrow-band result; every rerun is recomputed full
band) and analytic for time: per-core initiation intervals from
:mod:`repro.hw.timing`, perfect prefetch overlap as the paper reports
("memory access time is completely hidden").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align import banded
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import CheckConfig
from repro.genome.synth import ExtensionJob
from repro.hw import timing
from repro.hw.seedex_core import CoreOutput, SeedExCore
from repro import constants as paper


@dataclass(frozen=True)
class AcceleratorConfig:
    """Device configuration (defaults = the paper's SeedEx-only image)."""

    clusters: int = 3
    clients_per_cluster: int = 4
    band: int = paper.DEFAULT_BAND
    batch_size: int = 512
    clock_hz: float = timing.FPGA_CLOCK_HZ
    axi_read_latency_cycles: int = paper.AXI_READ_LATENCY_CYCLES
    output_coalesce_ratio: int = 5

    @property
    def n_cores(self) -> int:
        """SeedEx cores on the device."""
        return self.clusters * self.clients_per_cluster

    @property
    def n_bsw_cores(self) -> int:
        """Narrow-band BSW engines on the device (3 per core)."""
        return self.n_cores * 3


@dataclass
class AcceleratorReport:
    """What one run of the accelerator produced."""

    outputs: list[CoreOutput]
    rerun_results: dict[int, ExtensionResult]
    total_cycles: float
    throughput_ext_per_s: float
    rerun_fraction: float
    prefetch_hidden: bool

    def final_result(self, index: int) -> ExtensionResult:
        """The guaranteed-optimal result for job ``index``."""
        if index in self.rerun_results:
            return self.rerun_results[index]
        return self.outputs[index].result


class SeedExAccelerator:
    """Device-level model: dispatch, compute, check, rerun."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        scoring: AffineGap = BWA_MEM_SCORING,
        check_config: CheckConfig | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.scoring = scoring
        self.cores = [
            SeedExCore(self.config.band, scoring, check_config)
            for _ in range(self.config.n_cores)
        ]

    def run(
        self,
        jobs: list[ExtensionJob],
        rerun_on_host: bool = True,
        model_io: bool = False,
    ) -> AcceleratorReport:
        """Process a job list and model device time.

        Jobs round-robin across SeedEx cores (the state manager
        bookkeeping multiple input streams).  Device time is the
        slowest core's busy time; prefetch hides memory latency as
        long as the AXI round-trip fits under one initiation interval.

        ``model_io=True`` routes every job through the memory-line
        packing path (:mod:`repro.hw.io_path`): jobs are serialized to
        512-bit lines, fed through the arbiter, and unpacked at the
        core — exercising the full Figure-7 input path functionally.
        """
        cfg = self.config
        if model_io:
            jobs = _through_io_path(jobs, len(self.cores))
        outputs: list[CoreOutput] = []
        core_busy = [0.0] * len(self.cores)
        for k, job in enumerate(jobs):
            core_idx = k % len(self.cores)
            core = self.cores[core_idx]
            before = _core_cycles(core)
            outputs.append(core.process(job))
            core_busy[core_idx] += _core_cycles(core) - before

        rerun_results: dict[int, ExtensionResult] = {}
        if rerun_on_host:
            for idx, out in enumerate(outputs):
                if not out.accepted:
                    rerun_results[idx] = banded.extend(
                        out.job.query,
                        out.job.target,
                        self.scoring,
                        out.job.h0,
                    )

        # Each SeedEx core's 3 BSW engines drain their share in
        # parallel; device time = slowest core.
        total_cycles = max(core_busy) / 3 if core_busy else 0.0
        compute_per_job = timing.initiation_interval_cycles(cfg.band)
        prefetch_hidden = cfg.axi_read_latency_cycles < compute_per_job
        seconds = total_cycles / cfg.clock_hz if total_cycles else 0.0
        throughput = len(jobs) / seconds if seconds else 0.0
        rerun_fraction = (
            len(rerun_results) / len(jobs)
            if jobs and rerun_on_host
            else sum(not o.accepted for o in outputs) / max(1, len(jobs))
        )
        return AcceleratorReport(
            outputs=outputs,
            rerun_results=rerun_results,
            total_cycles=total_cycles,
            throughput_ext_per_s=throughput,
            rerun_fraction=rerun_fraction,
            prefetch_hidden=prefetch_hidden,
        )

    def passing_rate(self) -> float:
        """Device-wide check passing rate so far."""
        jobs = sum(c.telemetry.jobs for c in self.cores)
        accepted = sum(c.telemetry.accepted for c in self.cores)
        return accepted / jobs if jobs else 0.0


def _core_cycles(core: SeedExCore) -> float:
    return core.telemetry.bsw_cycles + core.telemetry.edit_cycles


def _through_io_path(
    jobs: list[ExtensionJob], n_streams: int
) -> list[ExtensionJob]:
    """Serialize jobs through the memory-line input path and back.

    One arbiter stream per core; each job becomes 512-bit lines, the
    arbiter interleaves the streams, and the state manager's
    reassembled lines are unpacked into jobs again — asserting, in
    effect, that nothing in the I/O plumbing can corrupt an input.
    """
    from repro.hw.io_path import Arbiter, pack_job, unpack_job

    per_stream: list[list[tuple[int, list[bytes], str]]] = [
        [] for _ in range(n_streams)
    ]
    for k, job in enumerate(jobs):
        per_stream[k % n_streams].append((k, pack_job(job), job.tag))

    arbiter = Arbiter()
    for sid in range(n_streams):
        lines: list[bytes] = []
        for _, job_lines, _ in per_stream[sid]:
            lines.extend(job_lines)
        if lines:
            arbiter.add_stream(sid, lines)
    arbiter.run()

    out: list[ExtensionJob] = [None] * len(jobs)  # type: ignore[list-item]
    for sid in range(n_streams):
        if not per_stream[sid]:
            continue
        delivered = arbiter.streams[sid].delivered
        cursor = 0
        for k, job_lines, tag in per_stream[sid]:
            chunk = delivered[cursor : cursor + len(job_lines)]
            cursor += len(job_lines)
            out[k] = unpack_job(chunk, tag=tag)
    return out
