"""The full SeedEx accelerator: clusters, clients, batching, rerun path.

Models the device level of Figure 7: the AWS shell exposes four DDR4
channels; each channel hosts one SeedEx *cluster* of four *clients*
(SeedEx cores).  Input batches are prefetched into BRAM so the AXI
read latency (40 cycles) hides under compute (~100 cycles per job),
results coalesce 5:1 into output lines, and the jobs that fail the
optimality checks come back on a rerun queue that the host drains with
the full-band software kernel.

The model is functional for decisions (every accepted score is the
proven-optimal narrow-band result; every rerun is recomputed full
band) and analytic for time: per-core initiation intervals from
:mod:`repro.hw.timing`, perfect prefetch overlap as the paper reports
("memory access time is completely hidden").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align import banded
from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import CheckConfig
from repro.genome.synth import ExtensionJob
from repro.hw import timing
from repro.hw.seedex_core import CoreOutput, SeedExCore
from repro import constants as paper


@dataclass(frozen=True)
class AcceleratorConfig:
    """Device configuration (defaults = the paper's SeedEx-only image)."""

    clusters: int = 3
    clients_per_cluster: int = 4
    band: int = paper.DEFAULT_BAND
    batch_size: int = 512
    clock_hz: float = timing.FPGA_CLOCK_HZ
    axi_read_latency_cycles: int = paper.AXI_READ_LATENCY_CYCLES
    output_coalesce_ratio: int = 5

    @property
    def n_cores(self) -> int:
        """SeedEx cores on the device."""
        return self.clusters * self.clients_per_cluster

    @property
    def n_bsw_cores(self) -> int:
        """Narrow-band BSW engines on the device (3 per core)."""
        return self.n_cores * 3


@dataclass
class AcceleratorReport:
    """What one run of the accelerator produced."""

    outputs: list[CoreOutput]
    rerun_results: dict[int, ExtensionResult]
    total_cycles: float
    throughput_ext_per_s: float
    rerun_fraction: float
    prefetch_hidden: bool
    faults_detected: int = 0
    dead_letter_indices: tuple[int, ...] = ()

    def final_result(self, index: int) -> ExtensionResult:
        """The guaranteed-optimal result for job ``index``.

        Raises ``KeyError`` for a dead-lettered index — those jobs
        have no result by definition (the rerun queue refused them).
        """
        if index in self.rerun_results:
            return self.rerun_results[index]
        if index in self.dead_letter_indices:
            raise KeyError(
                f"job {index} was dead-lettered: rerun queue full"
            )
        return self.outputs[index].result


class SeedExAccelerator:
    """Device-level model: dispatch, compute, check, rerun."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        scoring: AffineGap = BWA_MEM_SCORING,
        check_config: CheckConfig | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.scoring = scoring
        self.cores = [
            SeedExCore(self.config.band, scoring, check_config)
            for _ in range(self.config.n_cores)
        ]

    def run(
        self,
        jobs: list[ExtensionJob],
        rerun_on_host: bool = True,
        model_io: bool = False,
        injector=None,
        rerun_queue_capacity: int | None = None,
    ) -> AcceleratorReport:
        """Process a job list and model device time.

        Jobs round-robin across SeedEx cores (the state manager
        bookkeeping multiple input streams).  Device time is the
        slowest core's busy time; prefetch hides memory latency as
        long as the AXI round-trip fits under one initiation interval.

        ``model_io=True`` routes every job through the memory-line
        packing path (:mod:`repro.hw.io_path`): jobs are serialized to
        512-bit lines, fed through the arbiter, and unpacked at the
        core — exercising the full Figure-7 input path functionally.

        ``injector`` (a :class:`~repro.faults.injector.FaultInjector`;
        implies ``model_io``) corrupts the packed lines in flight.
        Jobs whose corruption the CRC framing catches skip the core
        and degrade straight to the host rerun queue — the host still
        holds its pristine copy of every in-flight job.
        ``rerun_queue_capacity`` bounds that queue; overflowing jobs
        are dead-lettered in the report rather than silently lost.
        """
        cfg = self.config
        corrupted: set[int] = set()
        if model_io or injector is not None:
            jobs_in = jobs
            jobs, corrupted = _through_io_path(
                jobs, len(self.cores), injector
            )
        outputs: list[CoreOutput | None] = []
        core_busy = [0.0] * len(self.cores)
        for k, job in enumerate(jobs):
            if k in corrupted:
                outputs.append(None)
                continue
            core_idx = k % len(self.cores)
            core = self.cores[core_idx]
            before = _core_cycles(core)
            outputs.append(core.process(job))
            core_busy[core_idx] += _core_cycles(core) - before

        rerun_results: dict[int, ExtensionResult] = {}
        dead_letters: list[int] = []
        if rerun_on_host:
            rerun_queue: list[tuple[int, ExtensionJob]] = []
            for idx, out in enumerate(outputs):
                if out is None:
                    # Detected corruption: the host reruns its own
                    # pristine copy of the job.
                    rerun_queue.append((idx, jobs_in[idx]))
                elif not out.accepted:
                    rerun_queue.append((idx, out.job))
            for n, (idx, job) in enumerate(rerun_queue):
                if (
                    rerun_queue_capacity is not None
                    and n >= rerun_queue_capacity
                ):
                    dead_letters.append(idx)
                    continue
                rerun_results[idx] = banded.extend(
                    job.query, job.target, self.scoring, job.h0
                )

        # Each SeedEx core's 3 BSW engines drain their share in
        # parallel; device time = slowest core.
        total_cycles = max(core_busy) / 3 if core_busy else 0.0
        compute_per_job = timing.initiation_interval_cycles(cfg.band)
        prefetch_hidden = cfg.axi_read_latency_cycles < compute_per_job
        seconds = total_cycles / cfg.clock_hz if total_cycles else 0.0
        throughput = len(jobs) / seconds if seconds else 0.0
        failed = len(corrupted) + sum(
            o is not None and not o.accepted for o in outputs
        )
        rerun_fraction = failed / max(1, len(jobs)) if jobs else 0.0
        return AcceleratorReport(
            outputs=outputs,
            rerun_results=rerun_results,
            total_cycles=total_cycles,
            throughput_ext_per_s=throughput,
            rerun_fraction=rerun_fraction,
            prefetch_hidden=prefetch_hidden,
            faults_detected=len(corrupted),
            dead_letter_indices=tuple(dead_letters),
        )

    def passing_rate(self) -> float:
        """Device-wide check passing rate so far."""
        jobs = sum(c.telemetry.jobs for c in self.cores)
        accepted = sum(c.telemetry.accepted for c in self.cores)
        return accepted / jobs if jobs else 0.0


def _core_cycles(core: SeedExCore) -> float:
    return core.telemetry.bsw_cycles + core.telemetry.edit_cycles


def _through_io_path(
    jobs: list[ExtensionJob], n_streams: int, injector=None
) -> tuple[list[ExtensionJob], set[int]]:
    """Serialize jobs through the memory-line input path and back.

    One arbiter stream per core; each job becomes 512-bit lines, the
    arbiter interleaves the streams, and the state manager's
    reassembled lines are unpacked into jobs again — asserting, in
    effect, that nothing in the I/O plumbing can corrupt an input
    *undetected*.

    With an ``injector``, each job's lines may be corrupted in flight
    (line faults); the CRC framing catches every corruption at unpack
    and the job's index lands in the returned ``corrupted`` set (the
    entry keeps the host's pristine copy for the rerun queue).  Drawn
    fault sites that have no seam on this batch path — stalls are
    absorbed by the state manager, and the per-record/batch seams
    belong to the dispatcher path — are counted as tolerated so the
    accounting invariant holds.
    """
    from repro.faults.injector import LINE_SITES
    from repro.hw.io_path import (
        Arbiter,
        CorruptLineError,
        pack_job,
        unpack_job,
    )

    per_stream: list[list[tuple[int, list[bytes], str]]] = [
        [] for _ in range(n_streams)
    ]
    site_of: dict[int, str] = {}
    for k, job in enumerate(jobs):
        lines = pack_job(job)
        if injector is not None:
            site = injector.draw()
            if site in LINE_SITES:
                lines = injector.corrupt_lines(site, lines)
                site_of[k] = site
            elif site is not None:
                injector.record_tolerated(site)
        per_stream[k % n_streams].append((k, lines, job.tag))

    arbiter = Arbiter()
    for sid in range(n_streams):
        lines = []
        for _, job_lines, _ in per_stream[sid]:
            lines.extend(job_lines)
        if lines:
            arbiter.add_stream(sid, lines)
    arbiter.run()

    out: list[ExtensionJob] = list(jobs)
    corrupted: set[int] = set()
    for sid in range(n_streams):
        if not per_stream[sid]:
            continue
        delivered = arbiter.streams[sid].delivered
        cursor = 0
        for k, job_lines, tag in per_stream[sid]:
            chunk = delivered[cursor : cursor + len(job_lines)]
            cursor += len(job_lines)
            try:
                out[k] = unpack_job(chunk, tag=tag)
            except CorruptLineError:
                corrupted.add(k)  # host copy stays in out[k]
                sink = getattr(injector, "sink", None)
                if sink is not None:
                    sink.record_detected(site_of.get(k, "line.bitflip"))
    return out, corrupted
