"""SeedEx Core: 3 BSW cores + 1 edit machine + check logic (Figure 7).

The core-level composition of the architecture: the arbiter feeds
parsed jobs to the least-loaded BSW core; the check logic applies the
thresholds and the E-score check to each narrow-band result; jobs in
case c are queued to the shared edit machine (the 3:1 core ratio comes
from roughly one in three extensions failing the threshold check,
Section VII-A); failures are emitted on the rerun queue for the host.

Functionally every decision is delegated to the *same*
:class:`repro.core.checker.OptimalityChecker` the software uses, so
the hardware model inherits the proven soundness; what this module
adds is occupancy/timing accounting per engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.banded import ExtensionResult
from repro.align.scoring import BWA_MEM_SCORING, AffineGap
from repro.core.checker import (
    CheckConfig,
    CheckDecision,
    CheckOutcome,
    OptimalityChecker,
)
from repro.genome.synth import ExtensionJob
from repro.hw import timing
from repro.hw.bsw_core import BSWCore

BSW_CORES_PER_SEEDEX_CORE = 3
"""Paper Section VII-A: the BSW:edit core ratio is 3:1."""


@dataclass(frozen=True)
class CoreOutput:
    """One job's outcome at the SeedEx-core level."""

    job: ExtensionJob
    result: ExtensionResult
    decision: CheckDecision
    accepted: bool
    hw_exception: bool


@dataclass
class CoreTelemetry:
    """Occupancy accounting for one SeedEx core."""

    jobs: int = 0
    accepted: int = 0
    rerun: int = 0
    exceptions: int = 0
    edit_machine_jobs: int = 0
    bsw_cycles: float = 0.0
    edit_cycles: float = 0.0
    outcome_counts: dict[CheckOutcome, int] = field(default_factory=dict)

    @property
    def passing_rate(self) -> float:
        """Fraction of this core's jobs accepted by the checks."""
        return self.accepted / self.jobs if self.jobs else 0.0

    @property
    def edit_machine_demand(self) -> float:
        """Fraction of jobs that needed the edit machine — should sit
        near 1/3 for the paper's 3:1 provisioning to balance."""
        return self.edit_machine_jobs / self.jobs if self.jobs else 0.0


class SeedExCore:
    """Three BSW cores, one edit machine, and the check pipeline."""

    def __init__(
        self,
        band: int = 41,
        scoring: AffineGap = BWA_MEM_SCORING,
        config: CheckConfig | None = None,
        mode: str = "fast",
    ) -> None:
        self.band = band
        self.scoring = scoring
        self.mode = mode
        self.bsw_cores = [
            BSWCore(band, scoring, mode)
            for _ in range(BSW_CORES_PER_SEEDEX_CORE)
        ]
        self.checker = OptimalityChecker(scoring, config)
        self.telemetry = CoreTelemetry()
        self._next_core = 0

    def process(self, job: ExtensionJob) -> CoreOutput:
        """Run one extension job through the core."""
        tele = self.telemetry
        tele.jobs += 1
        core = self.bsw_cores[self._next_core]
        self._next_core = (self._next_core + 1) % len(self.bsw_cores)
        run = core.run(job.query, job.target, job.h0)
        tele.bsw_cycles += run.cycles

        decision = self.checker.check(job.query, job.target, run.result)
        tele.outcome_counts[decision.outcome] = (
            tele.outcome_counts.get(decision.outcome, 0) + 1
        )
        # The edit machine runs for every job that reached case c with
        # a passing E-score check (checker outcome PASS_CHECKS or
        # FAIL_EDIT both consumed an edit-machine slot).
        if decision.outcome in (
            CheckOutcome.PASS_CHECKS,
            CheckOutcome.FAIL_EDIT,
        ):
            tele.edit_machine_jobs += 1
            tele.edit_cycles += timing.initiation_interval_cycles(
                self.band, read_length=max(1, len(job.query))
            )

        accepted = decision.passed and not run.exception
        if run.exception:
            tele.exceptions += 1
        if accepted:
            tele.accepted += 1
        else:
            tele.rerun += 1
        return CoreOutput(
            job=job,
            result=run.result,
            decision=decision,
            accepted=accepted,
            hw_exception=run.exception,
        )

    def process_batch(self, jobs: list[ExtensionJob]) -> list[CoreOutput]:
        """Process a list of jobs in order."""
        return [self.process(job) for job in jobs]
