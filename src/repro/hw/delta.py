"""Delta encoding: Lipton-Lopresti residue arithmetic (paper Sec IV-B).

The edit machine's datapath width is the dominant area cost, so scores
are stored as 3-bit residues modulo ``DELTA_MODULUS = 8``.  Magnitude
comparisons on residues are possible because DP scores have a bounded
dynamic range: if two candidates are known to differ by at most
``delta`` and the modulo circle's circumference satisfies
``modulus >= 2*delta + 1``, then whichever residue precedes the other
on the shorter arc is the smaller value (paper Figure 9).

* :func:`dmax2` / :func:`dmax3` — the 2- and 3-input delta-max units
  (Figure 11);
* :class:`AugmentationUnit` — decodes residues back to full-width
  scores by walking along the augmentation path (Figure 10), keeping
  one full-width accumulator.

Every function validates its bounded-difference precondition when
given full-width inputs; the hardware cannot, which is why the edit
machine's scoring scheme was co-designed to respect the bound.
"""

from __future__ import annotations

DELTA_MODULUS = 8
"""Modulo-circle circumference: 3-bit residues, supports delta <= 3."""

MAX_DELTA = (DELTA_MODULUS - 1) // 2
"""Largest pairwise difference the 3-bit circle can order."""


def encode_residue(value: int, modulus: int = DELTA_MODULUS) -> int:
    """Full-width score -> residue on the modulo circle."""
    return value % modulus


def dmax2(
    x1: int, x2: int, modulus: int = DELTA_MODULUS
) -> tuple[int, bool]:
    """Residue of ``max(X1, X2)`` given ``|X1 - X2| <= (modulus-1)//2``.

    Returns ``(residue, second_is_larger)``.  Pure residue logic: walk
    the circle from ``x1`` to ``x2`` clockwise; if the arc is short,
    ``X2`` is the larger (paper Figure 9, left/middle).
    """
    delta = (modulus - 1) // 2
    arc = (x2 - x1) % modulus
    if arc == 0:
        return x1 % modulus, False
    if arc <= delta:
        return x2 % modulus, True
    return x1 % modulus, False


def dmax3(
    x1: int, x2: int, x3: int, modulus: int = DELTA_MODULUS
) -> int:
    """Residue of ``max(X1, X2, X3)`` (two dmax2 stages, Figure 11)."""
    first, _ = dmax2(x1, x2, modulus)
    out, _ = dmax2(first, x3, modulus)
    return out


def checked_dmax(
    values: list[int], modulus: int = DELTA_MODULUS
) -> int:
    """Residue max over full-width values, asserting the bound.

    Test/model helper: encodes, runs the dmax tree, and verifies both
    the precondition and that the result matches the true max.
    """
    delta = (modulus - 1) // 2
    for a in values:
        for b in values:
            if abs(a - b) > delta:
                raise ValueError(
                    f"pairwise difference |{a} - {b}| exceeds delta="
                    f"{delta}; the modulo circle cannot order these"
                )
    residues = [encode_residue(v, modulus) for v in values]
    out = residues[0]
    for r in residues[1:]:
        out, _ = dmax2(out, r, modulus)
    assert out == max(values) % modulus
    return out


class AugmentationUnit:
    """Decodes delta scores along the augmentation path (Figure 10).

    Keeps one full-width score; each :meth:`decode` consumes the next
    residue on the path, assuming the true score moved by at most
    ``delta`` since the previous step.  This is the only full-width
    arithmetic in the edit machine — everything else is 3-bit.
    """

    def __init__(
        self, initial_score: int, modulus: int = DELTA_MODULUS
    ) -> None:
        self.modulus = modulus
        self.delta = (modulus - 1) // 2
        self.score = initial_score

    def decode(self, residue: int) -> int:
        """Advance along the path: residue -> full-width score."""
        if not 0 <= residue < self.modulus:
            raise ValueError(f"residue {residue} outside the circle")
        diff = (residue - self.score) % self.modulus
        if diff > self.delta:
            diff -= self.modulus
        self.score += diff
        return self.score
